package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/signal"
	"stsmatch/internal/testutil"
)

// fixture is a sharded deployment plus a single-node oracle loaded
// with the union of the same data.
type fixture struct {
	cluster  *testutil.Cluster
	oracle   *httptest.Server
	sessions map[string]string // sessionID -> patientID
	querySID string
	queryPID string
}

func newOracleTS(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(nil, core.DefaultParams(), fsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// ingestSession creates a session and streams a deterministic
// synthetic respiration trace into it through the given base URL.
func ingestSession(t *testing.T, baseURL, pid, sid string, seed int64) {
	t.Helper()
	resp := testutil.PostJSON(t, baseURL+"/v1/sessions",
		server.CreateSessionRequest{PatientID: pid, SessionID: sid})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session %s/%s via %s: status %d", pid, sid, baseURL, resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), seed)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(45)
	for i := 0; i < len(samples); i += 512 {
		end := min(i+512, len(samples))
		batch := make([]server.SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
		}
		resp := testutil.PostJSON(t, baseURL+"/v1/sessions/"+sid+"/samples", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", sid, resp.StatusCode)
		}
	}
}

// newFixture spins up 3 shards behind a gateway at the given
// replication factor, ingests 6 patients through the gateway (routed
// by the ring), and mirrors the identical data into a single-node
// oracle.
func newFixture(t *testing.T, replicas int) *fixture {
	t.Helper()
	f := &fixture{
		cluster:  testutil.StartCluster(t, 3, replicas),
		oracle:   newOracleTS(t),
		sessions: map[string]string{},
	}
	for i := 0; i < 6; i++ {
		pid := fmt.Sprintf("P%02d", i)
		sid := "S-" + pid
		f.sessions[sid] = pid
		ingestSession(t, f.cluster.URL, pid, sid, int64(100+i))
		ingestSession(t, f.oracle.URL, pid, sid, int64(100+i))
	}
	f.queryPID = "P00"
	f.querySID = "S-P00"
	return f
}

// querySeq takes the trailing window of the query patient's PLR from
// the oracle (identical on the owning shard, since the data is).
func (f *fixture) querySeq(t *testing.T) plr.Sequence {
	t.Helper()
	pr := testutil.GetJSON[server.PLRResponse](t, f.oracle.URL+"/v1/sessions/"+f.querySID+"/plr")
	if len(pr.Vertices) < 12 {
		t.Fatalf("query stream too short: %d vertices", len(pr.Vertices))
	}
	return plr.Sequence(pr.Vertices[len(pr.Vertices)-10:])
}

func TestGatewayShardedMatchesOracle(t *testing.T) {
	f := newFixture(t, 1)

	// The ring must actually have spread the 6 patients over multiple
	// shards, or this test proves nothing.
	spread := 0
	for _, n := range f.cluster.Nodes {
		st := testutil.GetJSON[server.StatsResponse](t, n.URL+"/v1/stats")
		if st.Patients > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("ring placed all patients on %d shard(s); need >= 2 for a meaningful scatter test", spread)
	}

	seq := f.querySeq(t)
	for _, k := range []int{0, 10} { // threshold mode and top-k mode
		req := server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: k}

		oresp := testutil.PostJSON(t, f.oracle.URL+"/v1/match", req)
		if oresp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: oracle match status %d", k, oresp.StatusCode)
		}
		oracle := testutil.Decode[server.MatchResponse](t, oresp)

		gresp := testutil.PostJSON(t, f.cluster.URL+"/v1/match", req)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: gateway match status %d", k, gresp.StatusCode)
		}
		merged := testutil.Decode[shard.MatchResult](t, gresp)

		if merged.Degraded {
			t.Errorf("k=%d: healthy deployment reported degraded", k)
		}
		if merged.ShardsQueried != 3 || merged.ShardsOK != 3 {
			t.Errorf("k=%d: fan-out %d/%d, want 3/3", k, merged.ShardsOK, merged.ShardsQueried)
		}
		if len(oracle.Matches) == 0 {
			t.Fatalf("k=%d: oracle found no matches; fixture is broken", k)
		}
		ob, err := json.Marshal(oracle.Matches)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(merged.Matches)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ob, gb) {
			t.Errorf("k=%d: sharded result differs from single-node oracle\noracle:  %d matches %s\ngateway: %d matches %s",
				k, len(oracle.Matches), trunc(ob), len(merged.Matches), trunc(gb))
		}
	}
}

func trunc(b []byte) string {
	const max = 600
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

func TestGatewayDegradedOnBackendFailure(t *testing.T) {
	f := newFixture(t, 1)
	seq := f.querySeq(t)
	req := server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: 10}

	// Expected surviving result: merge the two surviving shards'
	// direct answers with the gateway's own merge.
	killedURL := f.cluster.Nodes[1].URL
	var lists [][]server.RemoteMatch
	for i, n := range f.cluster.Nodes {
		if i == 1 {
			continue
		}
		resp := testutil.PostJSON(t, n.URL+"/v1/match", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct shard match status %d", resp.StatusCode)
		}
		lists = append(lists, testutil.Decode[server.MatchResponse](t, resp).Matches)
	}
	want := shard.MergeMatches(lists, req.K)

	f.cluster.Kill(killedURL) // kill one backend mid-test

	resp := testutil.PostJSON(t, f.cluster.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded match status %d, want 200 with partial results", resp.StatusCode)
	}
	res := testutil.Decode[shard.MatchResult](t, resp)
	if !res.Degraded {
		t.Error("degraded flag not set with a dead backend at replication factor 1")
	}
	if res.ShardsOK != 2 || res.ShardsQueried != 3 {
		t.Errorf("fan-out %d/%d, want 2/3", res.ShardsOK, res.ShardsQueried)
	}
	if len(res.ShardErrors) != 1 {
		t.Errorf("shardErrors = %v, want exactly the killed backend", res.ShardErrors)
	}
	if _, ok := res.ShardErrors[killedURL]; !ok {
		t.Errorf("shardErrors %v missing killed backend %s", res.ShardErrors, killedURL)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(res.Matches)
	if !bytes.Equal(wb, gb) {
		t.Errorf("degraded result != surviving shards' merge\nwant %s\ngot  %s", trunc(wb), trunc(gb))
	}

	// Active probing ejects the dead backend; healthz reports it.
	f.cluster.Probe(3)
	hz := testutil.GetJSON[shard.GatewayHealthResponse](t, f.cluster.URL+"/v1/healthz")
	if hz.Status != "degraded" || hz.HealthyCount != 2 {
		t.Errorf("healthz = %+v, want degraded with 2 healthy backends", hz)
	}

	// An ejected backend is skipped (not re-dialed) but still reported.
	resp = testutil.PostJSON(t, f.cluster.URL+"/v1/match", req)
	res = testutil.Decode[shard.MatchResult](t, resp)
	if !res.Degraded || res.ShardErrors[killedURL] == "" {
		t.Error("ejected backend not reported in degraded scatter")
	}

	// Aggregated stats stay available and flag degradation.
	st := testutil.GetJSON[shard.GatewayStatsResponse](t, f.cluster.URL+"/v1/stats")
	if !st.Degraded || st.ShardsOK != 2 {
		t.Errorf("stats = %+v, want degraded aggregate over 2 shards", st)
	}
	if st.Patients == 0 || st.Vertices == 0 {
		t.Error("surviving shards' stats not aggregated")
	}
}

func TestGatewaySessionRoutingAndDiscovery(t *testing.T) {
	f := newFixture(t, 1)

	// Prediction through the gateway must equal prediction from the
	// owning shard directly: same process, same data, same parameters.
	owner, _, ok := f.cluster.Gateway.SessionPlacement(f.querySID)
	if !ok {
		t.Fatal("gateway lost the session placement")
	}
	direct := testutil.GetJSON[server.PredictionResponse](t, owner+"/v1/sessions/"+f.querySID+"/predict?delta=200ms")
	viaGW := testutil.GetJSON[server.PredictionResponse](t, f.cluster.URL+"/v1/sessions/"+f.querySID+"/predict?delta=200ms")
	db, _ := json.Marshal(direct)
	gb, _ := json.Marshal(viaGW)
	if !bytes.Equal(db, gb) {
		t.Errorf("gateway prediction %s != direct %s", gb, db)
	}

	// A fresh gateway (restart) has an empty session table and must
	// rediscover placement from the shards' inventories.
	urls := make([]string, len(f.cluster.Nodes))
	for i, n := range f.cluster.Nodes {
		urls[i] = n.URL
	}
	gw2, err := shard.NewGateway(urls, shard.Options{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	ts2 := httptest.NewServer(gw2)
	defer ts2.Close()
	rediscovered := testutil.GetJSON[server.PLRResponse](t, ts2.URL+"/v1/sessions/"+f.querySID+"/plr")
	if len(rediscovered.Vertices) == 0 {
		t.Error("rediscovered session returned empty PLR")
	}
	if got, _, ok := gw2.SessionPlacement(f.querySID); !ok || got != owner {
		t.Errorf("discovery cached %q, want %q", got, owner)
	}

	// Unknown sessions 404 without a placement.
	resp, err := http.Get(ts2.URL + "/v1/sessions/nope/plr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status %d, want 404", resp.StatusCode)
	}

	// Closing through the gateway drops the placement.
	dresp := testutil.Delete(t, f.cluster.URL+"/v1/sessions/"+f.querySID)
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("close via gateway status %d", dresp.StatusCode)
	}
	if _, _, still := f.cluster.Gateway.SessionPlacement(f.querySID); still {
		t.Error("placement not dropped after close")
	}
}
