package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/server"
	"stsmatch/internal/signal"
)

// fixture is a 3-shard deployment plus a single-node oracle loaded
// with the union of the same data.
type fixture struct {
	backends []*httptest.Server
	gw       *Gateway
	gwTS     *httptest.Server
	oracle   *httptest.Server
	sessions map[string]string // sessionID -> patientID
	querySID string
	queryPID string
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func newBackendTS(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := server.New(nil, core.DefaultParams(), fsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// ingestSession creates a session and streams a deterministic
// synthetic respiration trace into it through the given base URL.
func ingestSession(t *testing.T, baseURL, pid, sid string, seed int64) {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/sessions", server.CreateSessionRequest{PatientID: pid, SessionID: sid})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session %s/%s via %s: status %d", pid, sid, baseURL, resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), seed)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(45)
	for i := 0; i < len(samples); i += 512 {
		end := min(i+512, len(samples))
		batch := make([]server.SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
		}
		resp := postJSON(t, baseURL+"/v1/sessions/"+sid+"/samples", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", sid, resp.StatusCode)
		}
	}
}

// newFixture spins up 3 shards behind a gateway, ingests 6 patients
// through the gateway (routed by the ring), and mirrors the identical
// data into a single-node oracle.
func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{sessions: map[string]string{}}
	for i := 0; i < 3; i++ {
		f.backends = append(f.backends, newBackendTS(t))
	}
	urls := make([]string, len(f.backends))
	for i, b := range f.backends {
		urls[i] = b.URL
	}
	gw, err := NewGateway(urls, Options{HealthInterval: -1, BackoffBase: 1e6, BackoffMax: 5e6})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	f.gw = gw
	f.gwTS = httptest.NewServer(gw)
	t.Cleanup(f.gwTS.Close)
	f.oracle = newBackendTS(t)

	for i := 0; i < 6; i++ {
		pid := fmt.Sprintf("P%02d", i)
		sid := "S-" + pid
		f.sessions[sid] = pid
		ingestSession(t, f.gwTS.URL, pid, sid, int64(100+i))
		ingestSession(t, f.oracle.URL, pid, sid, int64(100+i))
	}
	f.queryPID = "P00"
	f.querySID = "S-P00"
	return f
}

// querySeq takes the trailing window of the query patient's PLR from
// the oracle (identical on the owning shard, since the data is).
func (f *fixture) querySeq(t *testing.T) plr.Sequence {
	t.Helper()
	pr := getJSON[server.PLRResponse](t, f.oracle.URL+"/v1/sessions/"+f.querySID+"/plr")
	if len(pr.Vertices) < 12 {
		t.Fatalf("query stream too short: %d vertices", len(pr.Vertices))
	}
	return plr.Sequence(pr.Vertices[len(pr.Vertices)-10:])
}

func TestGatewayShardedMatchesOracle(t *testing.T) {
	f := newFixture(t)

	// The ring must actually have spread the 6 patients over multiple
	// shards, or this test proves nothing.
	spread := 0
	for _, b := range f.backends {
		st := getJSON[server.StatsResponse](t, b.URL+"/v1/stats")
		if st.Patients > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("ring placed all patients on %d shard(s); need >= 2 for a meaningful scatter test", spread)
	}

	seq := f.querySeq(t)
	for _, k := range []int{0, 10} { // threshold mode and top-k mode
		req := server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: k}

		oresp := postJSON(t, f.oracle.URL+"/v1/match", req)
		if oresp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: oracle match status %d", k, oresp.StatusCode)
		}
		oracle := decodeBody[server.MatchResponse](t, oresp)

		gresp := postJSON(t, f.gwTS.URL+"/v1/match", req)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: gateway match status %d", k, gresp.StatusCode)
		}
		merged := decodeBody[MatchResult](t, gresp)

		if merged.Degraded {
			t.Errorf("k=%d: healthy deployment reported degraded", k)
		}
		if merged.ShardsQueried != 3 || merged.ShardsOK != 3 {
			t.Errorf("k=%d: fan-out %d/%d, want 3/3", k, merged.ShardsOK, merged.ShardsQueried)
		}
		if len(oracle.Matches) == 0 {
			t.Fatalf("k=%d: oracle found no matches; fixture is broken", k)
		}
		ob, err := json.Marshal(oracle.Matches)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := json.Marshal(merged.Matches)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ob, gb) {
			t.Errorf("k=%d: sharded result differs from single-node oracle\noracle:  %d matches %s\ngateway: %d matches %s",
				k, len(oracle.Matches), trunc(ob), len(merged.Matches), trunc(gb))
		}
	}
}

func trunc(b []byte) string {
	const max = 600
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

func TestGatewayDegradedOnBackendFailure(t *testing.T) {
	f := newFixture(t)
	seq := f.querySeq(t)
	req := server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: 10}

	// Expected surviving result: merge the two surviving shards'
	// direct answers with the gateway's own merge.
	killed := f.backends[1]
	var lists [][]server.RemoteMatch
	for i, b := range f.backends {
		if i == 1 {
			continue
		}
		resp := postJSON(t, b.URL+"/v1/match", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct shard match status %d", resp.StatusCode)
		}
		lists = append(lists, decodeBody[server.MatchResponse](t, resp).Matches)
	}
	want := mergeMatches(lists, req.K)

	killed.Close() // kill one backend mid-test

	resp := postJSON(t, f.gwTS.URL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded match status %d, want 200 with partial results", resp.StatusCode)
	}
	res := decodeBody[MatchResult](t, resp)
	if !res.Degraded {
		t.Error("degraded flag not set with a dead backend")
	}
	if res.ShardsOK != 2 || res.ShardsQueried != 3 {
		t.Errorf("fan-out %d/%d, want 2/3", res.ShardsOK, res.ShardsQueried)
	}
	if len(res.ShardErrors) != 1 {
		t.Errorf("shardErrors = %v, want exactly the killed backend", res.ShardErrors)
	}
	if _, ok := res.ShardErrors[killed.URL]; !ok {
		t.Errorf("shardErrors %v missing killed backend %s", res.ShardErrors, killed.URL)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(res.Matches)
	if !bytes.Equal(wb, gb) {
		t.Errorf("degraded result != surviving shards' merge\nwant %s\ngot  %s", trunc(wb), trunc(gb))
	}

	// Active probing ejects the dead backend; healthz reports it.
	for i := 0; i < 3; i++ {
		f.gw.Pool().ProbeAll()
	}
	hz := getJSON[GatewayHealthResponse](t, f.gwTS.URL+"/v1/healthz")
	if hz.Status != "degraded" || hz.HealthyCount != 2 {
		t.Errorf("healthz = %+v, want degraded with 2 healthy backends", hz)
	}

	// An ejected backend is skipped (not re-dialed) but still reported.
	resp = postJSON(t, f.gwTS.URL+"/v1/match", req)
	res = decodeBody[MatchResult](t, resp)
	if !res.Degraded || res.ShardErrors[killed.URL] == "" {
		t.Error("ejected backend not reported in degraded scatter")
	}

	// Aggregated stats stay available and flag degradation.
	st := getJSON[GatewayStatsResponse](t, f.gwTS.URL+"/v1/stats")
	if !st.Degraded || st.ShardsOK != 2 {
		t.Errorf("stats = %+v, want degraded aggregate over 2 shards", st)
	}
	if st.Patients == 0 || st.Vertices == 0 {
		t.Error("surviving shards' stats not aggregated")
	}
}

func TestGatewaySessionRoutingAndDiscovery(t *testing.T) {
	f := newFixture(t)

	// Prediction through the gateway must equal prediction from the
	// owning shard directly: same process, same data, same parameters.
	owner, ok := f.gw.sessions.Load(f.querySID)
	if !ok {
		t.Fatal("gateway lost the session placement")
	}
	direct := getJSON[server.PredictionResponse](t, owner.(string)+"/v1/sessions/"+f.querySID+"/predict?delta=200ms")
	viaGW := getJSON[server.PredictionResponse](t, f.gwTS.URL+"/v1/sessions/"+f.querySID+"/predict?delta=200ms")
	db, _ := json.Marshal(direct)
	gb, _ := json.Marshal(viaGW)
	if !bytes.Equal(db, gb) {
		t.Errorf("gateway prediction %s != direct %s", gb, db)
	}

	// A fresh gateway (restart) has an empty session table and must
	// rediscover placement from the shards' inventories.
	urls := make([]string, len(f.backends))
	for i, b := range f.backends {
		urls[i] = b.URL
	}
	gw2, err := NewGateway(urls, Options{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	ts2 := httptest.NewServer(gw2)
	defer ts2.Close()
	rediscovered := getJSON[server.PLRResponse](t, ts2.URL+"/v1/sessions/"+f.querySID+"/plr")
	if len(rediscovered.Vertices) == 0 {
		t.Error("rediscovered session returned empty PLR")
	}
	if v, ok := gw2.sessions.Load(f.querySID); !ok || v.(string) != owner.(string) {
		t.Errorf("discovery cached %v, want %v", v, owner)
	}

	// Unknown sessions 404 without a placement.
	resp, err := http.Get(ts2.URL + "/v1/sessions/nope/plr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status %d, want 404", resp.StatusCode)
	}

	// Closing through the gateway drops the placement.
	reqDel, _ := http.NewRequest(http.MethodDelete, f.gwTS.URL+"/v1/sessions/"+f.querySID, nil)
	dresp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Errorf("close via gateway status %d", dresp.StatusCode)
	}
	if _, still := f.gw.sessions.Load(f.querySID); still {
		t.Error("placement not dropped after close")
	}
}
