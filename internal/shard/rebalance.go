// Elastic rebalancing (PR 10): when the backend set changes, the
// gateway computes which sessions' ring arcs moved and drains exactly
// those onto their new owners through the shards' live-migration
// endpoint (POST /v1/sessions/{sid}/migrate), with bounded
// concurrency and per-session retry/backoff.
//
// The drain is crash-safe from either side because it is formulated as
// "diff ACTUAL placement against DESIRED", not as a journal of planned
// moves. Actual placement is rediscovered from the shards' own
// inventories (/v1/shard/stats), so a fresh gateway — or one restarted
// mid-drain — recomputes exactly the not-yet-moved remainder: sessions
// whose migration committed answer from their new primary (or via the
// source's 410 tombstone) and drop out of the diff, while interrupted
// ones are re-driven through the migrate endpoint's idempotent
// re-drive path. A shard crash mid-migration is likewise recovered by
// re-running Rebalance: a dead source fails over onto a surviving
// replica first, and the move re-drives from the new primary.
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/server"
)

// rebalanceAttempts is the per-session migrate retry budget within one
// Rebalance pass (each retry re-checks health and fails over first).
const rebalanceAttempts = 3

// MovedSession records one completed migration in a RebalanceReport.
type MovedSession struct {
	SessionID string `json:"sessionId"`
	PatientID string `json:"patientId"`
	From      string `json:"from"`
	To        string `json:"to"`
}

// RebalanceReport summarizes one rebalance pass.
type RebalanceReport struct {
	// Checked counts sessions whose placement was compared against the
	// ring; Skipped counts those already on their designated primary.
	Checked int `json:"checked"`
	Skipped int `json:"skipped"`
	// Moved lists completed migrations, sorted by session ID.
	Moved []MovedSession `json:"moved,omitempty"`
	// Failed maps session ID -> error for moves that exhausted their
	// retries; re-running the rebalance re-drives exactly these.
	Failed map[string]string `json:"failed,omitempty"`
}

// AddBackend grows the cluster: the backend joins the pool (health
// checking, scatter fan-out) and the ring (new arcs). Idempotent. It
// does not move any data — call Rebalance to drain the sessions whose
// arcs moved.
func (g *Gateway) AddBackend(url string) error {
	if _, err := g.pool.AddBackend(url); err != nil {
		return err
	}
	g.ring.Add(url)
	return nil
}

// Rebalance drains every session whose ring-designated primary differs
// from where it actually lives, migrating each onto its new owner. Safe
// to re-run at any time: a no-op when placement already matches the
// ring, and the re-drive path after any crash.
func (g *Gateway) Rebalance(ctx context.Context) RebalanceReport {
	g.met.rebalances.Inc()
	g.discoverPlacements(ctx)

	type task struct {
		sid, pid, from string
		desired        []string
	}
	var tasks []task
	rep := RebalanceReport{Failed: map[string]string{}}
	g.mu.Lock()
	for sid, pl := range g.places {
		rep.Checked++
		desired := g.ring.Owners(pl.patientID, g.opts.Replicas)
		if len(desired) == 0 || pl.primary == desired[0] {
			rep.Skipped++
			continue
		}
		tasks = append(tasks, task{sid: sid, pid: pl.patientID, from: pl.primary, desired: desired})
	}
	g.mu.Unlock()
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].sid < tasks[b].sid })

	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, g.opts.RebalanceConcurrency)
	)
	for _, t := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(t task) {
			defer wg.Done()
			defer func() { <-sem }()
			err := g.migrateSession(ctx, t.sid, t.desired)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rep.Failed[t.sid] = err.Error()
				g.met.rebalanceFailures.Inc()
				g.log.Warn("rebalance: session move failed",
					slog.String("sessionId", t.sid), slog.Any("err", err))
				return
			}
			rep.Moved = append(rep.Moved, MovedSession{
				SessionID: t.sid, PatientID: t.pid, From: t.from, To: t.desired[0],
			})
			g.met.rebalanceMoved.Inc()
		}(t)
	}
	wg.Wait()
	sort.Slice(rep.Moved, func(a, b int) bool { return rep.Moved[a].SessionID < rep.Moved[b].SessionID })
	if len(rep.Failed) == 0 {
		rep.Failed = nil
	}
	g.log.Info("rebalance finished",
		slog.Int("checked", rep.Checked),
		slog.Int("moved", len(rep.Moved)),
		slog.Int("failed", len(rep.Failed)))
	return rep
}

// migrateSession moves one session onto desired[0], retrying with
// backoff. A dead source is failed over onto a surviving replica first
// (the ordinary promote path), then the move re-drives from the new
// primary; a source that already committed the migration answers
// AlreadyMigrated and the placement just catches up.
func (g *Gateway) migrateSession(ctx context.Context, sid string, desired []string) error {
	ctx, sp := obs.StartSpan(ctx, "migrate")
	defer sp.Finish()
	sp.Annotate("sessionId", sid)
	sp.Annotate("target", desired[0])
	var lastErr error
	for attempt := 0; attempt < rebalanceAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(g.pool.backoff(attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		g.mu.Lock()
		pl, ok := g.places[sid]
		g.mu.Unlock()
		if !ok {
			return fmt.Errorf("session %q vanished from the placement table", sid)
		}
		src := g.primaryBackend(pl)
		if src == nil {
			// Source is dead or unknown: promote a surviving replica so
			// there is a live primary to migrate from. The replica holds
			// every acked vertex (replication is synchronous with the
			// ack), so no data is at risk; the move then re-drives.
			var err error
			src, err = g.failover(ctx, sid, pl)
			if err != nil {
				lastErr = fmt.Errorf("source down and no replica promoted: %w", err)
				continue
			}
		}
		if src.URL() == desired[0] {
			// Failover (or a prior partially-observed attempt) already put
			// the session on its designated owner.
			g.updatePlacement(sid, desired)
			return nil
		}
		resp, err := g.callMigrate(ctx, src, sid, desired)
		if err != nil {
			lastErr = err
			continue
		}
		sp.Annotate("epoch", resp.Epoch)
		g.updatePlacement(sid, desired)
		return nil
	}
	return lastErr
}

// callMigrate POSTs one migrate request to the session's source shard,
// on the dedicated long-budget client.
func (g *Gateway) callMigrate(ctx context.Context, src *Backend, sid string, desired []string) (*server.MigrateResponse, error) {
	// Unhealthy designated replicas are dropped from the tail, exactly
	// as failover drops a dead primary: shipping to a dead node would
	// put a replica error on every post-cutover ack. A re-run once the
	// node is readmitted re-links it.
	tail := make([]string, 0, len(desired)-1)
	for _, u := range desired[1:] {
		if b := g.pool.ByURL(u); b != nil && b.Healthy() {
			tail = append(tail, u)
		}
	}
	body, err := json.Marshal(server.MigrateRequest{Target: desired[0], Replicate: tail})
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithTimeout(ctx, g.opts.MigrateTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost,
		src.URL()+"/v1/sessions/"+url.PathEscape(sid)+"/migrate", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHeaders(rctx, req.Header)
	hresp, err := g.migClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	switch hresp.StatusCode {
	case http.StatusOK:
		var mr server.MigrateResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			return nil, fmt.Errorf("decoding migrate response: %w", err)
		}
		return &mr, nil
	case http.StatusGone:
		// The source already tombstoned the session (a prior attempt
		// committed); the migration is done.
		return &server.MigrateResponse{SessionID: sid, Target: desired[0], AlreadyMigrated: true}, nil
	default:
		return nil, fmt.Errorf("migrate on %s: status %d: %s", src.URL(), hresp.StatusCode, errDetail(data))
	}
}

// updatePlacement points a session's placement at its ring-designated
// owner set after a completed move.
func (g *Gateway) updatePlacement(sid string, desired []string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if pl, ok := g.places[sid]; ok {
		pl.primary = desired[0]
		pl.owners = append([]string(nil), desired...)
	}
}

// discoverPlacements fills the placement table from the shards' own
// session inventories, so a rebalance diff starts from where sessions
// ACTUALLY live — the property that makes a drain re-drivable after a
// gateway restart. Only unknown sessions are added; live placements
// (updated synchronously on create/migrate/failover) are authoritative.
func (g *Gateway) discoverPlacements(ctx context.Context) {
	backends := g.pool.Backends()
	type inventory struct {
		url   string
		stats server.ShardStatsResponse
		ok    bool
	}
	invs := make([]inventory, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(ctx, b, http.MethodGet, "/v1/shard/stats", nil, true)
			if err != nil || status != http.StatusOK {
				return
			}
			if json.Unmarshal(body, &invs[i].stats) != nil {
				return
			}
			invs[i].url = b.URL()
			invs[i].ok = true
		}(i, b)
	}
	wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, inv := range invs {
		if !inv.ok {
			continue
		}
		for _, s := range inv.stats.Sessions {
			pl, ok := g.places[s.SessionID]
			if !ok {
				g.places[s.SessionID] = &placement{
					patientID: s.PatientID,
					primary:   inv.url,
					owners:    []string{inv.url},
				}
				continue
			}
			if pl.primary == "" {
				pl.primary = inv.url
			}
		}
	}
	// Fold follower claims into owner sets so failover candidates are
	// known for sessions learned above.
	for _, inv := range invs {
		if !inv.ok {
			continue
		}
		for _, s := range inv.stats.Replicas {
			pl, ok := g.places[s.SessionID]
			if !ok {
				continue
			}
			has := false
			for _, u := range pl.owners {
				if u == inv.url {
					has = true
					break
				}
			}
			if !has {
				pl.owners = append(pl.owners, inv.url)
			}
		}
	}
}

// AddBackendRequest is the admin payload growing the cluster.
type AddBackendRequest struct {
	URL string `json:"url"`
}

// AddBackendResponse reports the grow + drain outcome.
type AddBackendResponse struct {
	Backends  []string        `json:"backends"`
	Rebalance RebalanceReport `json:"rebalance"`
}

// handleAddBackend (POST /v1/admin/backends) adds a backend and drains
// the sessions whose arcs moved onto it.
func (g *Gateway) handleAddBackend(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req AddBackendRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	req.URL = strings.TrimRight(req.URL, "/")
	if req.URL == "" {
		gwError(w, http.StatusBadRequest, errors.New("url is required"))
		return
	}
	if err := g.AddBackend(req.URL); err != nil {
		gwError(w, http.StatusBadRequest, err)
		return
	}
	rep := g.Rebalance(r.Context())
	urls := make([]string, 0)
	for _, b := range g.pool.Backends() {
		urls = append(urls, b.URL())
	}
	gwJSON(w, http.StatusOK, AddBackendResponse{Backends: urls, Rebalance: rep})
}

// handleRebalance (POST /v1/admin/rebalance) re-drives the drain: a
// no-op when placement matches the ring, the recovery path after a
// crash anywhere mid-drain.
func (g *Gateway) handleRebalance(w http.ResponseWriter, r *http.Request) {
	gwJSON(w, http.StatusOK, g.Rebalance(r.Context()))
}
