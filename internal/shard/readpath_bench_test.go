package shard_test

// Read-path benchmarks: the same deterministic query through the
// legacy primary-only scatter (max-lag 0), the follower-read plan
// (loose bound, arcs pinned to caught-up replicas), and the gateway
// result cache. Every iteration's match list is checked against the
// primary-only reference, so CI's bench smoke at -benchtime=1x doubles
// as a cheap end-to-end exercise of all three modes; representative
// numbers come from `benchmatch -clients`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/signal"
	"stsmatch/internal/testutil"
)

// benchIngest mirrors ingestSession for benchmarks: create a session
// and stream a deterministic trace into it through the gateway.
func benchIngest(tb testing.TB, baseURL, pid, sid string, seed int64) {
	tb.Helper()
	resp := testutil.PostJSON(tb, baseURL+"/v1/sessions",
		server.CreateSessionRequest{PatientID: pid, SessionID: sid})
	if resp.StatusCode != http.StatusCreated {
		tb.Fatalf("create session %s via %s: status %d", sid, baseURL, resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), seed)
	if err != nil {
		tb.Fatal(err)
	}
	samples := gen.Generate(30)
	for i := 0; i < len(samples); i += 512 {
		end := min(i+512, len(samples))
		batch := make([]server.SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
		}
		resp := testutil.PostJSON(tb, baseURL+"/v1/sessions/"+sid+"/samples", batch)
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("ingest %s: status %d", sid, resp.StatusCode)
		}
	}
}

// benchMatch posts raw body bytes and returns the decoded result plus
// the X-Cache header.
func benchMatch(tb testing.TB, baseURL string, body []byte) (shard.MatchResult, string) {
	tb.Helper()
	resp, err := http.Post(baseURL+"/v1/match", "application/json", bytes.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("match status %d: %s", resp.StatusCode, raw)
	}
	var res shard.MatchResult
	if err := json.Unmarshal(raw, &res); err != nil {
		tb.Fatal(err)
	}
	return res, resp.Header.Get("X-Cache")
}

// setupReadBench boots an R=2 cluster with an ingested cohort and
// returns the gateway URL, the primary-only and follower-read request
// bodies, and the reference match-list bytes both must reproduce.
func setupReadBench(b *testing.B, cacheSize int) (gwURL string, prim, fol, want []byte) {
	b.Helper()
	c := testutil.StartCluster(b, 3, 2, func(cfg *testutil.ClusterConfig) {
		cfg.Gateway.MatchCacheSize = cacheSize
	})
	for i := 0; i < 3; i++ {
		pid := fmt.Sprintf("P%02d", i)
		benchIngest(b, c.URL, pid, "S-"+pid, int64(100+i))
	}
	pr := testutil.GetJSON[server.PLRResponse](b, c.URL+"/v1/sessions/S-P00/plr")
	if len(pr.Vertices) < 12 {
		b.Fatalf("query stream too short: %d vertices", len(pr.Vertices))
	}
	req := server.MatchRequest{Seq: pr.Vertices[len(pr.Vertices)-10:],
		PatientID: "P00", SessionID: "S-P00", K: 10}
	prim, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	req.MaxLag = 1 << 20
	if fol, err = json.Marshal(req); err != nil {
		b.Fatal(err)
	}
	res, _ := benchMatch(b, c.URL, prim)
	if res.Degraded || len(res.Matches) == 0 {
		b.Fatalf("warmup degraded=%v matches=%d", res.Degraded, len(res.Matches))
	}
	if want, err = json.Marshal(res.Matches); err != nil {
		b.Fatal(err)
	}
	return c.URL, prim, fol, want
}

// checkMatches asserts one iteration reproduced the reference merge.
func checkMatches(b *testing.B, res shard.MatchResult, want []byte) {
	b.Helper()
	got, err := json.Marshal(res.Matches)
	if err != nil {
		b.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		b.Fatalf("matches diverged from primary-only merge:\nwant %s\ngot  %s", want, got)
	}
}

func BenchmarkMatchPrimaryOnly(b *testing.B) {
	gwURL, prim, _, want := setupReadBench(b, -1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := benchMatch(b, gwURL, prim)
		checkMatches(b, res, want)
	}
}

func BenchmarkMatchFollowerReads(b *testing.B) {
	gwURL, _, fol, want := setupReadBench(b, -1)
	res, _ := benchMatch(b, gwURL, fol)
	if res.FollowerServed == 0 || res.PlannedPatients == 0 {
		b.Fatalf("follower-read warmup: planned=%d followerServed=%d",
			res.PlannedPatients, res.FollowerServed)
	}
	checkMatches(b, res, want)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := benchMatch(b, gwURL, fol)
		checkMatches(b, res, want)
	}
}

func BenchmarkMatchCacheHit(b *testing.B) {
	gwURL, prim, _, want := setupReadBench(b, 0) // 0 = default-sized cache
	// The setup query ran before any store tokens were known
	// (uncacheable); the next fills the cache and the one after must
	// hit.
	benchMatch(b, gwURL, prim)
	if _, cc := benchMatch(b, gwURL, prim); cc != "hit" {
		b.Fatalf("cache warmup: X-Cache = %q, want hit", cc)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, cc := benchMatch(b, gwURL, prim)
		if cc != "hit" {
			b.Fatalf("iteration %d: X-Cache = %q, want hit", i, cc)
		}
		checkMatches(b, res, want)
	}
}
