package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps retry/backoff timing negligible in tests; the active
// checker is disabled so tests drive probes deterministically via
// ProbeAll. ReadmitThreshold 1 readmits on a single passing probe so
// the ejection tests stay focused; flap damping has its own test
// (TestFlapDampingRequiresConsecutiveSuccesses).
func fastOpts() Options {
	return Options{
		Timeout:          2 * time.Second,
		MaxRetries:       2,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		HealthInterval:   -1,
		FailThreshold:    3,
		ReadmitThreshold: 1,
	}
}

func TestPoolRetriesIdempotent(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
	}))
	defer ts.Close()

	p, err := NewPool([]string{ts.URL}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := p.Backends()[0]

	status, body, err := p.do(context.Background(), b, http.MethodGet, "/", nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Errorf("status %d after retries, want 200", status)
	}
	if string(body) != `{"ok":true}` {
		t.Errorf("body %q", body)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

func TestPoolNoRetryOnMutation(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	p, err := NewPool([]string{ts.URL}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	status, _, err := p.do(context.Background(), p.Backends()[0], http.MethodPost, "/", []byte("[]"), false)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 passed through", status)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("non-idempotent call attempted %d times, want exactly 1", got)
	}
}

func TestPoolEjectionAndReadmission(t *testing.T) {
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			// Simulate a dead process: hijack-close would be more
			// realistic, but an error status on /v1/healthz is what the
			// prober treats as failure too.
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	opts := fastOpts()
	p, err := NewPool([]string{ts.URL}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := p.Backends()[0]
	if !b.Healthy() {
		t.Fatal("backend must start healthy")
	}

	down.Store(true)
	for i := 0; i < opts.FailThreshold; i++ {
		p.ProbeAll()
	}
	if b.Healthy() {
		t.Fatalf("backend still healthy after %d failed probes", opts.FailThreshold)
	}
	if p.NumHealthy() != 0 {
		t.Error("NumHealthy != 0 after ejection")
	}

	down.Store(false)
	p.ProbeAll()
	if !b.Healthy() {
		t.Error("backend not readmitted by a successful probe")
	}
	if p.NumHealthy() != 1 {
		t.Error("NumHealthy != 1 after readmission")
	}
}

func TestPoolPassiveFailureDetection(t *testing.T) {
	// A backend that stops responding is ejected by request failures
	// alone, without waiting for the active checker.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	opts := fastOpts()
	opts.Timeout = 200 * time.Millisecond
	p, err := NewPool([]string{ts.URL}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := p.Backends()[0]
	ts.Close() // kill the backend

	for i := 0; i < opts.FailThreshold; i++ {
		if _, _, err := p.do(context.Background(), b, http.MethodGet, "/", nil, false); err == nil {
			t.Fatal("request to a closed backend succeeded")
		}
	}
	if b.Healthy() {
		t.Error("backend not ejected after repeated request failures")
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(nil, Options{}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := NewPool([]string{"http://a", "http://a"}, Options{HealthInterval: -1}); err == nil {
		t.Error("duplicate backend accepted")
	}
	if _, err := NewPool([]string{""}, Options{HealthInterval: -1}); err == nil {
		t.Error("empty URL accepted")
	}
}

func TestStoreSeqNewer(t *testing.T) {
	cases := []struct {
		a, cur string
		want   bool
	}{
		{"100-5", "", true}, // anything supersedes the unknown token
		{"100-6", "100-5", true},
		{"100-5", "100-5", false},
		{"100-4", "100-5", false},
		// A later incarnation (greater epoch) supersedes regardless of
		// its counter.
		{"200-1", "100-99", true},
		// A delayed response from a previous incarnation must NOT
		// retreat the token past a post-restart observation: the
		// retreated token would reconstruct a pre-restart cache key.
		{"100-99", "200-1", false},
		// Unparsable current values are always superseded; unparsable
		// candidates never supersede a parsable current.
		{"100-5", "garbage", true},
		{"garbage", "100-5", false},
		{"100-5", "bogus-x", true},
		{"bogus-x", "100-5", false},
		// Parsable seqs under unparsable epochs: epoch comparison decides.
		{"epochB-1", "epochA-9", true}, // current epoch unparsable -> accept
	}
	for _, c := range cases {
		if got := storeSeqNewer(c.a, c.cur); got != c.want {
			t.Errorf("storeSeqNewer(%q, %q) = %v, want %v", c.a, c.cur, got, c.want)
		}
	}
}

// TestNoteStoreSeqNoEpochRetreat: once a post-restart token is
// tracked, racing responses from the shard's previous incarnation can
// neither retreat the token nor ping-pong it between epochs.
func TestNoteStoreSeqNoEpochRetreat(t *testing.T) {
	b := &Backend{}
	b.storeSeq.Store("")
	b.noteStoreSeq("100-7") // pre-restart incarnation
	b.noteStoreSeq("200-1") // shard restarted
	b.noteStoreSeq("100-9") // delayed in-flight pre-restart response
	if got := b.StoreSeq(); got != "200-1" {
		t.Fatalf("tracked token = %q after delayed old-epoch response, want 200-1", got)
	}
	b.noteStoreSeq("200-2")
	if got := b.StoreSeq(); got != "200-2" {
		t.Fatalf("tracked token = %q, want 200-2", got)
	}
}

func TestFreshnessIntervalDefault(t *testing.T) {
	if got := (Options{}).withDefaults().FreshnessInterval; got != 0 {
		t.Errorf("unreplicated default FreshnessInterval = %v, want 0 (disabled)", got)
	}
	if got := (Options{Replicas: 2}).withDefaults().FreshnessInterval; got != DefaultFreshnessInterval {
		t.Errorf("R=2 default FreshnessInterval = %v, want %v", got, DefaultFreshnessInterval)
	}
	if got := (Options{Replicas: 2, FreshnessInterval: -1}).withDefaults().FreshnessInterval; got != -1 {
		t.Errorf("explicit disable overridden: %v", got)
	}
}

func TestBackoffBounds(t *testing.T) {
	p := &Pool{opts: fastOpts().withDefaults()}
	for n := 1; n < 20; n++ {
		d := p.backoff(n)
		if d <= 0 || d > p.opts.BackoffMax {
			t.Fatalf("backoff(%d) = %v out of (0, %v]", n, d, p.opts.BackoffMax)
		}
	}
}
