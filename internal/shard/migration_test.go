package shard_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stsmatch/internal/plr"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/testutil"
)

// movedPatient picks a patient ID whose ring arc moves onto newURL
// when it joins a ring currently holding urls. The rings here are
// rebuilt with the gateway's deterministic layout (DefaultVnodes), so
// the prediction matches what Rebalance will decide at runtime even
// though the loopback URLs differ per run.
func movedPatient(t *testing.T, urls []string, newURL string) string {
	t.Helper()
	before := shard.NewRing(0)
	for _, u := range urls {
		before.Add(u)
	}
	after := before.Clone()
	after.Add(newURL)
	for i := 50; i < 250; i++ {
		pid := fmt.Sprintf("P%02d", i)
		if before.Owner(pid) != newURL && after.Owner(pid) == newURL {
			return pid
		}
	}
	t.Fatal("no candidate patient arc moves onto the new backend; ring fixture broken")
	return ""
}

// growBackends drives POST /v1/admin/backends — the operator's "grow
// the cluster" call: join the pool and the ring, then drain the moved
// arcs — and returns the combined report.
func growBackends(t *testing.T, gatewayURL, newURL string) shard.AddBackendResponse {
	t.Helper()
	resp := testutil.PostJSON(t, gatewayURL+"/v1/admin/backends", shard.AddBackendRequest{URL: newURL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin add backend: status %d", resp.StatusCode)
	}
	return testutil.Decode[shard.AddBackendResponse](t, resp)
}

// assertSessionMoved fails unless the report shows sid landing on
// wantTo.
func assertSessionMoved(t *testing.T, rep shard.RebalanceReport, sid, wantTo string) {
	t.Helper()
	for _, m := range rep.Moved {
		if m.SessionID == sid {
			if m.To != wantTo {
				t.Fatalf("session %s moved to %s, want %s", sid, m.To, wantTo)
			}
			return
		}
	}
	t.Fatalf("session %s not in the moved set %+v", sid, rep.Moved)
}

// assertPLREqual asserts zero acknowledged-vertex loss: the PLR served
// for the session through the gateway is vertex-for-vertex the PLR of
// the single-node oracle that ingested exactly the acked data.
func assertPLREqual(t *testing.T, label, gatewayURL, oracleURL, sid string) server.PLRResponse {
	t.Helper()
	got := testutil.GetJSON[server.PLRResponse](t, gatewayURL+"/v1/sessions/"+sid+"/plr")
	want := testutil.GetJSON[server.PLRResponse](t, oracleURL+"/v1/sessions/"+sid+"/plr")
	if len(got.Vertices) != len(want.Vertices) {
		t.Fatalf("%s: PLR length %d, oracle has %d: acknowledged data lost",
			label, len(got.Vertices), len(want.Vertices))
	}
	for i := range want.Vertices {
		if !reflect.DeepEqual(got.Vertices[i], want.Vertices[i]) {
			t.Fatalf("%s: PLR vertex %d diverged: got %+v want %+v",
				label, i, got.Vertices[i], want.Vertices[i])
		}
	}
	return want
}

// assertMatchEquivalence asserts POST /v1/match through the gateway is
// byte-identical to the oracle at k=0 and k=10, with no degraded
// marker and the expected healthy fan-out.
func assertMatchEquivalence(t *testing.T, label, gatewayURL, oracleURL string, req server.MatchRequest, wantOK, wantQueried int) {
	t.Helper()
	for _, k := range []int{0, 10} {
		r := req
		r.K = k
		oresp := testutil.PostJSON(t, oracleURL+"/v1/match", r)
		if oresp.StatusCode != http.StatusOK {
			t.Fatalf("%s k=%d: oracle match status %d", label, k, oresp.StatusCode)
		}
		om := testutil.Decode[server.MatchResponse](t, oresp)
		if len(om.Matches) == 0 {
			t.Fatalf("%s k=%d: oracle found no matches; fixture is broken", label, k)
		}
		raw, res := matchBody(t, gatewayURL, r)
		if bytes.Contains(raw, []byte(`"degraded"`)) {
			t.Errorf("%s k=%d: match response carries a degraded marker: %s", label, k, trunc(raw))
		}
		if res.ShardsOK != wantOK || res.ShardsQueried != wantQueried {
			t.Errorf("%s k=%d: fan-out %d/%d, want %d/%d",
				label, k, res.ShardsOK, res.ShardsQueried, wantOK, wantQueried)
		}
		ob, _ := json.Marshal(om.Matches)
		gb, _ := json.Marshal(res.Matches)
		if !bytes.Equal(ob, gb) {
			t.Errorf("%s k=%d: matches differ from oracle\noracle:  %s\ngateway: %s",
				label, k, trunc(ob), trunc(gb))
		}
	}
}

// ingestContextPatients streams n fully-ingested context patients into
// both deployments so similarity search has cross-patient candidates.
// They complete before any migration, so an oracle crash-recovery at
// the cutover point is byte-identical for them.
func ingestContextPatients(t *testing.T, clusterURL, oracleURL string, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		pid := fmt.Sprintf("P%02d", i)
		sid := "S-" + pid
		createSession(t, clusterURL, pid, sid)
		createSession(t, oracleURL, pid, sid)
		for _, b := range respBatches(t, int64(400+i), 45) {
			ingestBatch(t, clusterURL, sid, b)
			ingestBatch(t, oracleURL, sid, b)
		}
	}
}

// TestMigrateLiveSession is the tentpole happy path: grow a 2-backend
// replicated deployment to 3 through POST /v1/admin/backends while a
// session is mid-stream. The rebalance must move exactly the sessions
// whose arcs moved, the drained session must keep ingesting through
// the gateway on its new primary with zero acked-vertex loss, the old
// primary must answer 410 Gone with a redirect hint, and POST
// /v1/match — at both the strict and the loose freshness bound — must
// stay byte-identical to a single-node oracle.
func TestMigrateLiveSession(t *testing.T) {
	c := testutil.StartCluster(t, 2, 2)
	oracleDir := t.TempDir()
	oracle := newDurableOracle(t, oracleDir)
	ingestContextPatients(t, c.URL, oracle.URL, 4)

	// Boot the third backend and pick a victim patient whose arc will
	// move onto it; stream half the victim's trace before the grow.
	n3 := c.AddNode(nil)
	pid := movedPatient(t, []string{c.Nodes[0].URL, c.Nodes[1].URL}, n3.URL)
	sid := "S-" + pid
	createSession(t, c.URL, pid, sid)
	createSession(t, oracle.URL, pid, sid)
	batches := respBatches(t, 77, 45)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}
	src, owners, ok := c.Gateway.SessionPlacement(sid)
	if !ok || len(owners) != 2 {
		t.Fatalf("placement = %q %v, want a primary with 2 owners", src, owners)
	}

	moved0 := scrapeCounter(t, c.URL, "stsmatch_gateway_rebalance_sessions_moved_total")
	ar := growBackends(t, c.URL, n3.URL)
	if len(ar.Backends) != 3 {
		t.Fatalf("backends after grow = %v, want 3", ar.Backends)
	}
	if len(ar.Rebalance.Failed) != 0 {
		t.Fatalf("rebalance failures on a healthy cluster: %v", ar.Rebalance.Failed)
	}
	assertSessionMoved(t, ar.Rebalance, sid, n3.URL)
	if got := scrapeCounter(t, c.URL, "stsmatch_gateway_rebalance_sessions_moved_total") - moved0; got != float64(len(ar.Rebalance.Moved)) {
		t.Errorf("moved counter advanced by %v, want %d", got, len(ar.Rebalance.Moved))
	}
	if p, _, _ := c.Gateway.SessionPlacement(sid); p != n3.URL {
		t.Fatalf("placement after grow = %q, want the new backend %q", p, n3.URL)
	}

	// The source must answer direct requests with 410 + redirect hint.
	gresp, err := http.Get(src + "/v1/sessions/" + sid + "/plr")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusGone {
		t.Fatalf("old primary answered %d, want 410 Gone", gresp.StatusCode)
	}
	if loc := gresp.Header.Get("Location"); loc != n3.URL {
		t.Fatalf("410 Location = %q, want %q", loc, n3.URL)
	}

	// Crash the oracle at the cutover point: promotion primes the
	// target's FSM through the same path as WAL crash recovery, so the
	// migrated session must be indistinguishable from a recovered node.
	oracle.Close()
	oracle = newDurableOracle(t, oracleDir)

	// The second half streams through the gateway onto the new primary.
	for _, b := range batches[half:] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}

	want := assertPLREqual(t, "post-migration", c.URL, oracle.URL, sid)

	c.Probe(1) // learn the new backend's store token
	c.Gateway.RefreshFreshness(context.Background())
	seq := plr.Sequence(want.Vertices[len(want.Vertices)-10:])
	req := server.MatchRequest{Seq: seq, PatientID: pid, SessionID: sid}
	assertMatchEquivalence(t, "strict", c.URL, oracle.URL, req, 3, 3)

	// Freshness equivalence: the loose bound may plan follower reads,
	// but a token must never let a stale or tombstoned arc answer — the
	// result stays byte-identical to the strict scatter and the oracle.
	loose := req
	loose.MaxLag = 1 << 20
	assertMatchEquivalence(t, "loose", c.URL, oracle.URL, loose, 3, 3)
	_, resL, _ := matchFull(t, c.URL, loose)
	if len(resL.UnservedPatients) != 0 {
		t.Errorf("loose scatter left unserved patients: %v", resL.UnservedPatients)
	}

	if got := scrapeCounter(t, src, "stsmatch_migrations_total"); got < 1 {
		t.Errorf("source migrations counter = %v, want >= 1", got)
	}
	logMetricLines(t, "gateway", c.URL,
		"stsmatch_gateway_rebalances_total", "stsmatch_gateway_rebalance_sessions_moved_total",
		"stsmatch_gateway_rebalance_failures_total")
	logMetricLines(t, "source "+src, src,
		"stsmatch_migrations_total", "stsmatch_migration_bytes_shipped_total",
		"stsmatch_migration_sessions_in_flight")
}

// TestMigrateKillGatewayMidDrain kills the orchestrator: the rebalance
// context is cancelled at the first migration's catch-up fault point,
// stranding the drain in a mix of committed, aborted, and in-flight
// moves. A brand-new gateway (a restarted process with an empty
// placement table) must rediscover actual placement from the shards
// and re-drive exactly the remainder to convergence, with zero acked
// loss and oracle-identical matches.
func TestMigrateKillGatewayMidDrain(t *testing.T) {
	c := testutil.StartCluster(t, 2, 2)
	oracleDir := t.TempDir()
	oracle := newDurableOracle(t, oracleDir)
	ingestContextPatients(t, c.URL, oracle.URL, 3)

	n3 := c.AddNode(nil)
	pid := movedPatient(t, []string{c.Nodes[0].URL, c.Nodes[1].URL}, n3.URL)
	sid := "S-" + pid
	createSession(t, c.URL, pid, sid)
	createSession(t, oracle.URL, pid, sid)
	batches := respBatches(t, 77, 45)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}

	// The "gateway crash": cancel the drain the moment any migration
	// reaches its catch-up fault point.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	for _, n := range c.Nodes[:2] {
		n.Server.SetMigrationHook(func(phase string) {
			if phase == "catchup" {
				once.Do(cancel)
			}
		})
	}
	if err := c.Gateway.AddBackend(n3.URL); err != nil {
		t.Fatal(err)
	}
	rep := c.Gateway.Rebalance(ctx)
	t.Logf("interrupted drain: checked %d moved %d failed %d",
		rep.Checked, len(rep.Moved), len(rep.Failed))
	for _, n := range c.Nodes[:2] {
		n.Server.SetMigrationHook(nil)
	}

	// A fresh gateway over the full backend set: no inherited placement
	// table, no inherited ring state beyond the configured membership.
	gw2, err := shard.NewGateway([]string{c.Nodes[0].URL, c.Nodes[1].URL, n3.URL}, shard.Options{
		Replicas:          2,
		HealthInterval:    -1,
		FreshnessInterval: -1,
		FailThreshold:     1,
		BackoffBase:       time.Millisecond,
		BackoffMax:        5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close()
	ts2 := httptest.NewServer(gw2)
	defer ts2.Close()

	rep2 := gw2.Rebalance(context.Background())
	if len(rep2.Failed) != 0 {
		t.Fatalf("re-driven rebalance still failing: %v", rep2.Failed)
	}
	if p, _, _ := gw2.SessionPlacement(sid); p != n3.URL {
		t.Fatalf("placement after re-drive = %q, want %q", p, n3.URL)
	}

	oracle.Close() // cutover point: promotion == crash recovery
	oracle = newDurableOracle(t, oracleDir)
	for _, b := range batches[half:] {
		ingestBatch(t, ts2.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}

	want := assertPLREqual(t, "post-re-drive", ts2.URL, oracle.URL, sid)
	gw2.Pool().ProbeAll()
	seq := plr.Sequence(want.Vertices[len(want.Vertices)-10:])
	assertMatchEquivalence(t, "after gateway crash", ts2.URL, oracle.URL,
		server.MatchRequest{Seq: seq, PatientID: pid, SessionID: sid}, 3, 3)
}

// TestMigrateKillSourceMidCatchup kills the migration source at its
// catch-up fault point — inbound requests aborted, outbound WAL
// shipments dropped, like a machine falling off the network. The first
// drain pass must fail cleanly (no half-moved state), and after the
// health checker ejects the corpse, a re-driven rebalance must fail
// the session over onto its surviving replica — which holds every
// acked vertex — and complete the move from there.
func TestMigrateKillSourceMidCatchup(t *testing.T) {
	kills := make([]*atomic.Bool, 2)
	c := testutil.StartCluster(t, 2, 2, func(cfg *testutil.ClusterConfig) {
		cfg.ConfigureServer = func(i int, o *server.Options) {
			kills[i] = &atomic.Bool{}
			k := kills[i]
			o.ReplicateTransport = testutil.NewFaultTransport().DropWhile(k.Load)
		}
	})
	oracleDir := t.TempDir()
	oracle := newDurableOracle(t, oracleDir)
	ingestContextPatients(t, c.URL, oracle.URL, 3)

	n3 := c.AddNode(nil)
	pid := movedPatient(t, []string{c.Nodes[0].URL, c.Nodes[1].URL}, n3.URL)
	sid := "S-" + pid
	createSession(t, c.URL, pid, sid)
	createSession(t, oracle.URL, pid, sid)
	batches := respBatches(t, 77, 45)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}

	src, owners, ok := c.Gateway.SessionPlacement(sid)
	if !ok || len(owners) != 2 {
		t.Fatalf("placement = %q %v, want a primary with 2 owners", src, owners)
	}
	srcNode := c.Node(src)
	srcIdx := 0
	for i, n := range c.Nodes[:2] {
		if n.URL == src {
			srcIdx = i
		}
	}
	var once sync.Once
	srcNode.Server.SetMigrationHook(func(phase string) {
		if phase != "catchup" {
			return
		}
		once.Do(func() {
			kills[srcIdx].Store(true) // outbound shipments die
			srcNode.PartitionOff()    // inbound requests die
		})
	})

	ar := growBackends(t, c.URL, n3.URL)
	if len(ar.Rebalance.Failed) == 0 {
		t.Fatalf("drain with a dying source reported no failures: %+v", ar.Rebalance)
	}
	t.Logf("first pass: moved %d failed %d", len(ar.Rebalance.Moved), len(ar.Rebalance.Failed))

	// Eject the corpse, then re-drive. The failover inside the re-drive
	// promotes the surviving replica, and the move completes from it.
	c.Probe(1)
	resp := testutil.PostJSON(t, c.URL+"/v1/admin/rebalance", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-drive: status %d", resp.StatusCode)
	}
	rep2 := testutil.Decode[shard.RebalanceReport](t, resp)
	if len(rep2.Failed) != 0 {
		t.Fatalf("re-driven rebalance still failing: %v", rep2.Failed)
	}
	if p, _, _ := c.Gateway.SessionPlacement(sid); p != n3.URL {
		t.Fatalf("placement after re-drive = %q, want %q", p, n3.URL)
	}

	// Cutover point: the replica was promoted through the recovery-primed
	// path and the target was primed from its snapshot.
	oracle.Close()
	oracle = newDurableOracle(t, oracleDir)
	for _, b := range batches[half:] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}

	want := assertPLREqual(t, "post-source-kill", c.URL, oracle.URL, sid)
	c.Probe(1)
	seq := plr.Sequence(want.Vertices[len(want.Vertices)-10:])
	// The dead source stays in the scatter set until an operator removes
	// it: 2 of 3 shards answer, and replicas cover every arc, so the
	// result is complete and undegraded.
	assertMatchEquivalence(t, "after source kill", c.URL, oracle.URL,
		server.MatchRequest{Seq: seq, PatientID: pid, SessionID: sid}, 2, 3)
	logMetricLines(t, "gateway", c.URL,
		"stsmatch_gateway_rebalance_failures_total", "stsmatch_gateway_failovers_total")
}

// TestMigrateKillTargetMidCutover kills the migration target at the
// source's cutover fault point — after the session is fenced and the
// prepare record is durable, before the final drain and promote. The
// source must roll the cutover back (abort record, unfence) and keep
// serving the session as if the migration was never attempted: ingest
// through the gateway continues on the old primary with zero loss and
// oracle-identical matches. The oracle never crashes, because no
// promotion ever happened.
func TestMigrateKillTargetMidCutover(t *testing.T) {
	c := testutil.StartCluster(t, 2, 2)
	oracle := newOracleTS(t)
	ingestContextPatients(t, c.URL, oracle.URL, 3)

	n3 := c.AddNode(nil)
	pid := movedPatient(t, []string{c.Nodes[0].URL, c.Nodes[1].URL}, n3.URL)
	sid := "S-" + pid
	createSession(t, c.URL, pid, sid)
	createSession(t, oracle.URL, pid, sid)
	batches := respBatches(t, 77, 45)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}
	src, _, _ := c.Gateway.SessionPlacement(sid)
	srcNode := c.Node(src)
	fails0 := scrapeCounter(t, src, "stsmatch_migration_failures_total")

	var once sync.Once
	srcNode.Server.SetMigrationHook(func(phase string) {
		if phase == "cutover" {
			once.Do(n3.PartitionOff)
		}
	})

	ar := growBackends(t, c.URL, n3.URL)
	if len(ar.Rebalance.Failed) == 0 {
		t.Fatalf("drain onto a dead target reported no failures: %+v", ar.Rebalance)
	}
	if _, failed := ar.Rebalance.Failed[sid]; !failed {
		t.Fatalf("victim %s not among the failed moves: %v", sid, ar.Rebalance.Failed)
	}
	if got := scrapeCounter(t, src, "stsmatch_migration_failures_total") - fails0; got < 1 {
		t.Errorf("source migration_failures advanced by %v, want >= 1", got)
	}
	if p, _, _ := c.Gateway.SessionPlacement(sid); p != src {
		t.Fatalf("placement moved to %q despite the failed cutover; want it kept on %q", p, src)
	}

	// The abort must have unfenced the session: the stream continues on
	// the old primary through the gateway as if nothing happened.
	for _, b := range batches[half:] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}

	want := assertPLREqual(t, "post-abort", c.URL, oracle.URL, sid)
	c.Probe(1) // ejects the dead target from the scatter set
	seq := plr.Sequence(want.Vertices[len(want.Vertices)-10:])
	assertMatchEquivalence(t, "after target kill", c.URL, oracle.URL,
		server.MatchRequest{Seq: seq, PatientID: pid, SessionID: sid}, 2, 3)
	logMetricLines(t, "source "+src, src,
		"stsmatch_migrations_total", "stsmatch_migration_failures_total")
}

// TestStandingQuerySurvivesMigration is the push-path equivalence
// satellite: a standing query registered through the gateway keeps its
// ONE event stream across a live migration of its session. The source
// expels the subscription at commit (waking the stream), the gateway
// proxy re-resolves to the new primary and resumes with Last-Event-ID,
// and the consumer sees exactly the polled-oracle diff — contiguous
// sequence numbers, no duplicate, no loss, bit-identical distances.
func TestStandingQuerySurvivesMigration(t *testing.T) {
	batches := respBatches(t, 77, 90)
	q1, half := len(batches)/4, len(batches)/2

	// Polled single-node oracle, crash-recovered at the cutover point.
	oracleDir := t.TempDir()
	oracle := newDurableOracle(t, oracleDir)

	c := testutil.StartCluster(t, 2, 2)
	n3 := c.AddNode(nil)
	pid := movedPatient(t, []string{c.Nodes[0].URL, c.Nodes[1].URL}, n3.URL)
	sid := "S-" + pid

	createSession(t, oracle.URL, pid, sid)
	for _, b := range batches[:q1] {
		ingestBatch(t, oracle.URL, sid, b)
	}
	pr := testutil.GetJSON[server.PLRResponse](t, oracle.URL+"/v1/sessions/"+sid+"/plr")
	if len(pr.Vertices) < 10 {
		t.Fatalf("PLR too short at registration point: %d", len(pr.Vertices))
	}
	qseq := plr.Sequence(pr.Vertices[len(pr.Vertices)-8:])
	oracleReq := server.MatchRequest{Seq: qseq, SessionID: sid}
	m0 := matchSet(t, oracle.URL, oracleReq)
	for _, b := range batches[q1:half] {
		ingestBatch(t, oracle.URL, sid, b)
	}
	mHalf := matchSet(t, oracle.URL, oracleReq)
	oracle.Close()
	oracle = newDurableOracle(t, oracleDir)
	for _, b := range batches[half:] {
		ingestBatch(t, oracle.URL, sid, b)
	}
	mFinal := matchSet(t, oracle.URL, oracleReq)
	expectPre := diffMatches(mHalf, m0)
	expectPost := diffMatches(mFinal, mHalf)
	if len(expectPre) == 0 || len(expectPost) == 0 {
		t.Fatalf("fixture must match on both sides of the migration: %d pre, %d post",
			len(expectPre), len(expectPost))
	}
	expected := append(append([]server.RemoteMatch{}, expectPre...), expectPost...)

	// The cluster under test: subscribe, stream, migrate mid-stream.
	createSession(t, c.URL, pid, sid)
	for _, b := range batches[:q1] {
		ingestBatch(t, c.URL, sid, b)
	}
	resp := testutil.PostJSON(t, c.URL+"/v1/subscriptions", server.SubscriptionRequest{
		ID: "mig-sub", Seq: qseq, SessionID: sid,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe via gateway: status %d", resp.StatusCode)
	}
	sr := testutil.Decode[server.SubscriptionResponse](t, resp)
	if len(sr.ReplicaErrors) > 0 {
		t.Fatalf("subscription not armed on the follower: %v", sr.ReplicaErrors)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.URL+"/v1/subscriptions/mig-sub/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream via gateway: status %d", stream.StatusCode)
	}

	type sseEvent struct {
		id   uint64
		data server.SubEventOut
	}
	got := make(chan sseEvent, 1024)
	go func() {
		defer close(got)
		sc := bufio.NewScanner(stream.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var cur sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				cur.id, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
			case strings.HasPrefix(line, "data: "):
				if json.Unmarshal([]byte(line[len("data: "):]), &cur.data) == nil {
					got <- cur
				}
			}
		}
	}()
	var events []sseEvent
	collect := func(total int, what string) {
		t.Helper()
		deadline := time.After(60 * time.Second)
		for len(events) < total {
			select {
			case e, ok := <-got:
				if !ok {
					t.Fatalf("%s: stream ended after %d of %d events", what, len(events), total)
				}
				events = append(events, e)
			case <-deadline:
				t.Fatalf("%s: timed out with %d of %d events", what, len(events), total)
			}
		}
	}

	// Phase 1: pre-migration events flow from the original primary.
	for _, b := range batches[q1:half] {
		ingestBatch(t, c.URL, sid, b)
	}
	collect(len(expectPre), "pre-migration")

	// Live migration: the session (and its subscription, shipped inside
	// the catch-up snapshot) moves to the new backend; the source expels
	// its copy at commit, which ends the upstream stream and forces the
	// gateway proxy to re-resolve and resume on the new primary.
	ar := growBackends(t, c.URL, n3.URL)
	if len(ar.Rebalance.Failed) != 0 {
		t.Fatalf("rebalance failures: %v", ar.Rebalance.Failed)
	}
	assertSessionMoved(t, ar.Rebalance, sid, n3.URL)

	for _, b := range batches[half:] {
		ingestBatch(t, c.URL, sid, b)
	}
	collect(len(expected), "post-migration")

	// Grace period: a duplicate re-pushed across the handover would
	// arrive right behind the expected tail.
	select {
	case e, chOpen := <-got:
		if chOpen {
			t.Fatalf("extra event after the oracle diff was exhausted: %+v", e)
		}
	case <-time.After(300 * time.Millisecond):
	}
	cancel()

	for i, e := range events {
		if e.id != uint64(i+1) || e.data.Seq != e.id {
			t.Fatalf("event %d: id %d seq %d, want contiguous from 1 (duplicate or gap at the migration boundary)",
				i, e.id, e.data.Seq)
		}
		want := expected[i]
		if e.data.PatientID != want.PatientID || e.data.SessionID != want.SessionID ||
			e.data.Start != want.Start || e.data.N != want.N ||
			e.data.Relation != want.Relation ||
			e.data.Distance != want.Distance || e.data.Weight != want.Weight {
			t.Errorf("event %d diverged from the polled oracle:\n got %+v\nwant %+v", i, e.data, want)
		}
	}

	// The subscription must now live exactly once, on the new primary.
	list := testutil.GetJSON[shard.GatewaySubsResponse](t, c.URL+"/v1/subscriptions")
	found := 0
	for _, st := range list.Subscriptions {
		if st.ID == "mig-sub" {
			found++
		}
	}
	if found != 1 {
		t.Errorf("subscription listed %d times after migration, want exactly 1: %+v", found, list.Subscriptions)
	}
}

// TestMigrateTombstoneRepairsPlacement is the regression test for the
// gateway's infinite placement caching: a session migrated out-of-band
// (operator drives the shard endpoint directly, bypassing the gateway)
// leaves the gateway's cached placement stale. The next session-scoped
// request must converge in exactly one retry — the 410 tombstone's
// redirect hint repairs the placement — instead of 410ing forever.
func TestMigrateTombstoneRepairsPlacement(t *testing.T) {
	c := testutil.StartCluster(t, 2, 2)
	const pid, sid = "P70", "S-P70"
	createSession(t, c.URL, pid, sid)
	batches := respBatches(t, 31, 30)
	for _, b := range batches[:len(batches)/2] {
		ingestBatch(t, c.URL, sid, b)
	}
	src, owners, ok := c.Gateway.SessionPlacement(sid)
	if !ok || len(owners) != 2 {
		t.Fatalf("placement = %q %v, want a primary with 2 owners", src, owners)
	}
	var target string
	for _, u := range owners {
		if u != src {
			target = u
		}
	}

	// Out-of-band migration, straight at the shard. The target is the
	// session's existing follower, so this also covers the reuse of the
	// ordinary replication link as the migration link.
	inv0 := scrapeCounter(t, c.URL, "stsmatch_gateway_placement_invalidations_total")
	resp := testutil.PostJSON(t, src+"/v1/sessions/"+sid+"/migrate",
		server.MigrateRequest{Target: target})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct migrate: status %d", resp.StatusCode)
	}
	mr := testutil.Decode[server.MigrateResponse](t, resp)
	if mr.Target != target || mr.AlreadyMigrated {
		t.Fatalf("migrate response %+v, want a fresh move to %s", mr, target)
	}

	// Re-driving the migrate endpoint is idempotent: same outcome,
	// flagged as already migrated.
	resp2 := testutil.PostJSON(t, src+"/v1/sessions/"+sid+"/migrate",
		server.MigrateRequest{Target: target})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-driven migrate: status %d", resp2.StatusCode)
	}
	if mr2 := testutil.Decode[server.MigrateResponse](t, resp2); !mr2.AlreadyMigrated {
		t.Errorf("re-driven migrate response %+v, want alreadyMigrated", mr2)
	}

	// The gateway still believes the old placement. One request must
	// repair it via the tombstone hint and succeed.
	gresp, err := http.Get(c.URL + "/v1/sessions/" + sid + "/plr")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("session-scoped request after out-of-band migration: status %d, want 200 via one-retry repair",
			gresp.StatusCode)
	}
	if got := scrapeCounter(t, c.URL, "stsmatch_gateway_placement_invalidations_total") - inv0; got != 1 {
		t.Errorf("placement invalidations advanced by %v, want exactly 1", got)
	}
	if p, _, _ := c.Gateway.SessionPlacement(sid); p != target {
		t.Fatalf("placement after repair = %q, want %q", p, target)
	}

	// And the stream keeps going on its new home.
	for _, b := range batches[len(batches)/2:] {
		ingestBatch(t, c.URL, sid, b)
	}
}
