// Gateway routing for standing subscriptions. A scoped subscription
// lives on one shard — the primary serving its session, or the ring
// owner of its patient — and the gateway remembers that placement so
// deletes and event streams find it again. The event stream is a
// streaming SSE proxy: the gateway relays the shard's stream byte for
// byte, tracks the last event ID it forwarded, and on an upstream
// failure re-resolves the placement (promoting a replica if the
// primary died) and reconnects with Last-Event-ID, so a consumer
// keeps one uninterrupted stream across a failover.

package shard

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/server"
	"stsmatch/internal/subscribe"
)

// subReconnects bounds how many times the event proxy re-resolves and
// reconnects after an upstream failure before giving up.
const subReconnects = 5

// subPlacement records where a subscription was registered. Session
// scope re-resolves through the session placement (and its failover
// machinery); patient scope re-resolves through the ring.
type subPlacement struct {
	patientID string
	sessionID string
	backend   string
}

// handleCreateSubscription routes a scoped registration to the owning
// shard: the primary currently serving the session, or the first
// healthy ring owner of the patient. Unscoped subscriptions have no
// single owner under sharding and are rejected — register them on a
// shard directly.
func (g *Gateway) handleCreateSubscription(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req server.SubscriptionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding subscription: %w", err))
		return
	}
	if req.PatientID == "" && req.SessionID == "" {
		gwError(w, http.StatusBadRequest,
			errors.New("sharded subscriptions need a patientId or sessionId scope"))
		return
	}
	b, err := g.subBackend(r, req.PatientID, req.SessionID)
	if err != nil {
		gwError(w, http.StatusServiceUnavailable, err)
		return
	}
	status, respBody, err := g.pool.do(r.Context(), b, http.MethodPost, "/v1/subscriptions", body, false)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if status == http.StatusCreated {
		var resp server.SubscriptionResponse
		if json.Unmarshal(respBody, &resp) == nil && resp.ID != "" {
			g.mu.Lock()
			g.subPlaces[resp.ID] = &subPlacement{
				patientID: req.PatientID,
				sessionID: req.SessionID,
				backend:   b.URL(),
			}
			g.mu.Unlock()
		}
	}
	relay(w, status, respBody)
}

// subBackend resolves the shard owning a subscription scope. Session
// scope follows the live session (including failover to a promoted
// replica); patient scope takes the first healthy ring owner.
func (g *Gateway) subBackend(r *http.Request, patientID, sessionID string) (*Backend, error) {
	if sessionID != "" {
		pl, err := g.placementFor(r, sessionID)
		if err != nil {
			return nil, err
		}
		if b := g.primaryBackend(pl); b != nil {
			return b, nil
		}
		b, err := g.failover(r.Context(), sessionID, pl)
		if err != nil {
			return nil, fmt.Errorf("session %s: primary down and no replica promoted: %w", sessionID, err)
		}
		return b, nil
	}
	owners := g.ring.Owners(patientID, g.opts.Replicas)
	for _, u := range owners {
		if b := g.pool.ByURL(u); b != nil && b.Healthy() {
			return b, nil
		}
	}
	return nil, fmt.Errorf("no healthy owner for patient %s (owners %v)", patientID, owners)
}

// GatewaySubsResponse is the merged subscription inventory.
type GatewaySubsResponse struct {
	Subscriptions []subscribe.Status `json:"subscriptions"`
	ShardErrors   map[string]string  `json:"shardErrors,omitempty"`
}

// handleListSubscriptions scatters the list to every healthy shard and
// merges. A replicated subscription is armed on followers too; the
// copy with the highest delivered/eval progress wins the dedupe so the
// listing reflects the serving primary.
func (g *Gateway) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	backends := g.pool.Backends()
	type leg struct {
		resp GatewaySubsResponse
		err  error
	}
	legs := make([]leg, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			legs[i].err = errors.New("unhealthy (ejected)")
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/subscriptions", nil, true)
			switch {
			case err != nil:
				legs[i].err = err
			case status != http.StatusOK:
				legs[i].err = fmt.Errorf("status %d: %s", status, errDetail(body))
			default:
				legs[i].err = json.Unmarshal(body, &legs[i].resp)
			}
		}(i, b)
	}
	wg.Wait()
	res := GatewaySubsResponse{Subscriptions: []subscribe.Status{}, ShardErrors: map[string]string{}}
	byID := make(map[string]int)
	for i, b := range backends {
		if legs[i].err != nil {
			res.ShardErrors[b.URL()] = legs[i].err.Error()
			continue
		}
		for _, st := range legs[i].resp.Subscriptions {
			if j, dup := byID[st.ID]; dup {
				if st.Sent > res.Subscriptions[j].Sent || st.Evals > res.Subscriptions[j].Evals {
					res.Subscriptions[j] = st
				}
				continue
			}
			byID[st.ID] = len(res.Subscriptions)
			res.Subscriptions = append(res.Subscriptions, st)
		}
	}
	sort.Slice(res.Subscriptions, func(a, b int) bool {
		return res.Subscriptions[a].ID < res.Subscriptions[b].ID
	})
	if len(res.ShardErrors) == 0 {
		res.ShardErrors = nil
	}
	gwJSON(w, http.StatusOK, res)
}

// handleDeleteSubscription routes a delete to the owning shard when
// the placement is known, and otherwise scatters it (e.g. after a
// gateway restart): any shard acknowledging the delete — primary or
// follower — journals it, and replication converges the rest.
func (g *Gateway) handleDeleteSubscription(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	path := "/v1/subscriptions/" + url.PathEscape(id)
	g.mu.Lock()
	pl := g.subPlaces[id]
	delete(g.subPlaces, id)
	g.mu.Unlock()
	if pl != nil {
		if b, err := g.subBackend(r, pl.patientID, pl.sessionID); err == nil {
			status, body, err := g.pool.do(r.Context(), b, http.MethodDelete, path, nil, false)
			if err == nil && status != http.StatusNotFound {
				relay(w, status, body)
				return
			}
		}
	}
	// Unknown or stale placement: scatter. Delete is idempotent on each
	// shard, so hitting followers too is safe.
	status, body := http.StatusNotFound, []byte(`{"error":"subscription not found on any reachable shard"}`)
	for _, b := range g.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		st, rb, err := g.pool.do(r.Context(), b, http.MethodDelete, path, nil, false)
		if err != nil {
			continue
		}
		if st == http.StatusOK {
			status, body = st, rb
		}
	}
	relay(w, status, body)
}

// handleSubEvents proxies a subscription's SSE stream from the owning
// shard, reconnecting through placement re-resolution (and session
// failover) when the upstream drops, resuming from the last event ID
// it forwarded so the consumer sees no duplicates and no gaps.
func (g *Gateway) handleSubEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		gwError(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("after")
	}
	started := false
	for attempt := 0; attempt <= subReconnects; attempt++ {
		if attempt > 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(g.pool.backoff(attempt)):
			}
		}
		b, err := g.subEventsBackend(r, id)
		if err != nil {
			if !started {
				gwError(w, http.StatusServiceUnavailable, err)
				return
			}
			continue
		}
		resp, err := g.openSubStream(r, b, id, lastID)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			if !started {
				// Relay the shard's error verbatim (404, 400, ...).
				buf := make([]byte, 4096)
				n, _ := resp.Body.Read(buf)
				resp.Body.Close()
				relay(w, resp.StatusCode, buf[:n])
				return
			}
			resp.Body.Close()
			continue
		}
		if !started {
			h := w.Header()
			h.Set("Content-Type", "text/event-stream")
			h.Set("Cache-Control", "no-cache")
			h.Set("X-Accel-Buffering", "no")
			obs.InjectHeaders(r.Context(), h)
			w.WriteHeader(http.StatusOK)
			fl.Flush()
			started = true
		}
		clientGone := g.relaySSE(w, fl, resp, &lastID)
		resp.Body.Close()
		if clientGone || r.Context().Err() != nil {
			return
		}
		attempt = 0 // upstream died but the client is still here: retry fresh
	}
}

// subEventsBackend finds the shard holding a subscription: known
// placement first, then a scatter over the shard listings.
func (g *Gateway) subEventsBackend(r *http.Request, id string) (*Backend, error) {
	g.mu.Lock()
	pl := g.subPlaces[id]
	g.mu.Unlock()
	if pl != nil {
		return g.subBackend(r, pl.patientID, pl.sessionID)
	}
	for _, b := range g.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/subscriptions", nil, true)
		if err != nil || status != http.StatusOK {
			continue
		}
		var resp GatewaySubsResponse
		if json.Unmarshal(body, &resp) != nil {
			continue
		}
		for _, st := range resp.Subscriptions {
			if st.ID == id {
				g.mu.Lock()
				g.subPlaces[id] = &subPlacement{
					patientID: st.PatientID,
					sessionID: st.SessionID,
					backend:   b.URL(),
				}
				g.mu.Unlock()
				return g.subBackend(r, st.PatientID, st.SessionID)
			}
		}
	}
	return nil, fmt.Errorf("no subscription %q on any reachable shard", id)
}

// openSubStream starts the upstream SSE request. No per-attempt
// timeout: the stream lives as long as the client's request context.
func (g *Gateway) openSubStream(r *http.Request, b *Backend, id, lastID string) (*http.Response, error) {
	u := b.URL() + "/v1/subscriptions/" + url.PathEscape(id) + "/events"
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if lastID != "" {
		req.Header.Set("Last-Event-ID", lastID)
	}
	obs.InjectHeaders(r.Context(), req.Header)
	resp, err := b.hc.Do(req)
	if err != nil {
		g.pool.recordFailure(b)
		return nil, err
	}
	g.pool.recordSuccess(b)
	return resp, nil
}

// relaySSE copies the upstream event stream to the client line by
// line, flushing at event boundaries and tracking the last `id:` seen
// (the resume cursor for reconnects). Returns true when the client is
// gone (write failure) — the caller stops; false means the upstream
// ended and the caller may reconnect.
func (g *Gateway) relaySSE(w http.ResponseWriter, fl http.Flusher, resp *http.Response, lastID *string) bool {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "id:"); ok {
			*lastID = strings.TrimSpace(v)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return true
		}
		if line == "" {
			fl.Flush()
		}
	}
	fl.Flush()
	return false
}
