package shard_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"stsmatch/internal/plr"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/testutil"
)

// matchSet polls POST /v1/match and indexes the result by window.
func matchSet(t *testing.T, baseURL string, req server.MatchRequest) map[string]server.RemoteMatch {
	t.Helper()
	resp := testutil.PostJSON(t, baseURL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle match via %s: status %d", baseURL, resp.StatusCode)
	}
	mr := testutil.Decode[server.MatchResponse](t, resp)
	out := make(map[string]server.RemoteMatch, len(mr.Matches))
	for _, m := range mr.Matches {
		out[windowKey(m.PatientID, m.SessionID, m.Start, m.N)] = m
	}
	return out
}

func windowKey(pid, sid string, start, n int) string {
	return pid + "/" + sid + "/" + strconv.Itoa(start) + "+" + strconv.Itoa(n)
}

// diffMatches returns the windows in cur but not in prev, in start
// order — the oracle's "new matches since the last poll".
func diffMatches(cur, prev map[string]server.RemoteMatch) []server.RemoteMatch {
	var out []server.RemoteMatch
	for k, m := range cur {
		if _, ok := prev[k]; !ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// TestGatewaySubscriptionScope: unscoped subscriptions have no single
// owner under sharding and are rejected at the gateway; scoped ones
// route to the owning shard, and delete + list work through the
// gateway.
func TestGatewaySubscriptionScope(t *testing.T) {
	c := testutil.StartCluster(t, 2, 0)
	createSession(t, c.URL, "P01", "S01")
	for _, b := range respBatches(t, 5, 20) {
		ingestBatch(t, c.URL, "S01", b)
	}
	pr := testutil.GetJSON[server.PLRResponse](t, c.URL+"/v1/sessions/S01/plr")
	if len(pr.Vertices) < 4 {
		t.Fatalf("PLR too short: %d", len(pr.Vertices))
	}
	seq := plr.Sequence(pr.Vertices[:4])

	if resp := testutil.PostJSON(t, c.URL+"/v1/subscriptions", server.SubscriptionRequest{Seq: seq}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unscoped subscription: status %d, want 400", resp.StatusCode)
	}
	resp := testutil.PostJSON(t, c.URL+"/v1/subscriptions", server.SubscriptionRequest{ID: "g1", Seq: seq, SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("scoped subscription: status %d", resp.StatusCode)
	}
	list := testutil.GetJSON[shard.GatewaySubsResponse](t, c.URL+"/v1/subscriptions")
	if len(list.Subscriptions) != 1 || list.Subscriptions[0].ID != "g1" {
		t.Fatalf("gateway list = %+v, want [g1]", list.Subscriptions)
	}
	req, err := http.NewRequest(http.MethodDelete, c.URL+"/v1/subscriptions/g1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway delete: %v status %d", err, resp.StatusCode)
	}
	if list := testutil.GetJSON[shard.GatewaySubsResponse](t, c.URL+"/v1/subscriptions"); len(list.Subscriptions) != 0 {
		t.Errorf("list after delete = %+v, want empty", list.Subscriptions)
	}
}

// TestStandingQuerySurvivesFailover is the push-path half of the
// failover guarantee: a standing query registered through the gateway
// keeps its ONE event stream across a primary kill — the gateway
// reconnects to the promoted follower with Last-Event-ID, the
// follower (armed by replication with the same cursors and sequence
// numbers) re-derives the identical events, and the consumer sees the
// exact polled-oracle diff: no duplicate and no lost event at the
// acked boundary, with bit-identical distances.
func TestStandingQuerySurvivesFailover(t *testing.T) {
	const pid, sid = "P00", "S-P00"
	batches := respBatches(t, 77, 90)
	q1, half := len(batches)/4, len(batches)/2

	// Single-node durable oracle: replay the same deterministic batches
	// and poll /v1/match at the registration point, the kill point, and
	// the end. The diffs are the events the standing query must push.
	// The oracle hard-crashes at the kill point because promotion
	// resumes the session through the same primed-FSM path as WAL crash
	// recovery (see TestFailoverKillPrimary): the promoted follower is
	// vertex-identical to a recovered node, not to one that never
	// stopped.
	oracleDir := t.TempDir()
	oracle := newDurableOracle(t, oracleDir)
	createSession(t, oracle.URL, pid, sid)
	for _, b := range batches[:q1] {
		ingestBatch(t, oracle.URL, sid, b)
	}
	pr := testutil.GetJSON[server.PLRResponse](t, oracle.URL+"/v1/sessions/"+sid+"/plr")
	if len(pr.Vertices) < 10 {
		t.Fatalf("PLR too short at registration point: %d", len(pr.Vertices))
	}
	qseq := plr.Sequence(pr.Vertices[len(pr.Vertices)-8:])
	// Session-only provenance, matching the subscription's scope: the
	// relation is other-patient (no patient in the provenance), so
	// self-exclusion does not apply and the diff is exact.
	oracleReq := server.MatchRequest{Seq: qseq, SessionID: sid}
	m0 := matchSet(t, oracle.URL, oracleReq)
	for _, b := range batches[q1:half] {
		ingestBatch(t, oracle.URL, sid, b)
	}
	mHalf := matchSet(t, oracle.URL, oracleReq)
	oracle.Close() // crash at the kill point, recover from the WAL
	oracle = newDurableOracle(t, oracleDir)
	for _, b := range batches[half:] {
		ingestBatch(t, oracle.URL, sid, b)
	}
	mFinal := matchSet(t, oracle.URL, oracleReq)
	expectPre := diffMatches(mHalf, m0)
	expectPost := diffMatches(mFinal, mHalf)
	if len(expectPre) == 0 || len(expectPost) == 0 {
		t.Fatalf("fixture must match on both sides of the kill: %d pre, %d post",
			len(expectPre), len(expectPost))
	}
	expected := append(append([]server.RemoteMatch{}, expectPre...), expectPost...)

	// The cluster under test: replication factor 2, same batches.
	c := testutil.StartCluster(t, 3, 2)
	createSession(t, c.URL, pid, sid)
	for _, b := range batches[:q1] {
		ingestBatch(t, c.URL, sid, b)
	}
	resp := testutil.PostJSON(t, c.URL+"/v1/subscriptions", server.SubscriptionRequest{
		ID: "fo-sub", Seq: qseq, SessionID: sid,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe via gateway: status %d", resp.StatusCode)
	}
	sr := testutil.Decode[server.SubscriptionResponse](t, resp)
	if len(sr.ReplicaErrors) > 0 {
		t.Fatalf("subscription not armed on the follower: %v", sr.ReplicaErrors)
	}

	// One SSE stream through the gateway for the whole test.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.URL+"/v1/subscriptions/fo-sub/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream via gateway: status %d", stream.StatusCode)
	}
	if stream.Header.Get("X-Trace-Id") == "" {
		t.Error("gateway SSE response missing X-Trace-Id")
	}

	type sseEvent struct {
		id   uint64
		data server.SubEventOut
	}
	got := make(chan sseEvent, 1024)
	go func() {
		defer close(got)
		sc := bufio.NewScanner(stream.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var cur sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				cur.id, _ = strconv.ParseUint(line[len("id: "):], 10, 64)
			case strings.HasPrefix(line, "data: "):
				if json.Unmarshal([]byte(line[len("data: "):]), &cur.data) == nil {
					got <- cur
				}
			}
		}
	}()
	var events []sseEvent
	collect := func(total int, what string) {
		t.Helper()
		deadline := time.After(60 * time.Second)
		for len(events) < total {
			select {
			case e, ok := <-got:
				if !ok {
					t.Fatalf("%s: stream ended after %d of %d events", what, len(events), total)
				}
				events = append(events, e)
			case <-deadline:
				t.Fatalf("%s: timed out with %d of %d events", what, len(events), total)
			}
		}
	}

	// Phase 1: the standing query pushes the pre-kill oracle diff.
	for _, b := range batches[q1:half] {
		ingestBatch(t, c.URL, sid, b)
	}
	collect(len(expectPre), "pre-kill")

	// Kill the primary. The gateway's upstream stream breaks; it must
	// re-resolve to the promoted follower and resume with
	// Last-Event-ID so the client stream continues seamlessly.
	primary, owners, ok := c.Gateway.SessionPlacement(sid)
	if !ok || len(owners) != 2 {
		t.Fatalf("placement = %q %v, want a primary with 2 owners", primary, owners)
	}
	c.Kill(primary)
	c.Probe(1)

	for _, b := range batches[half:] {
		ingestBatch(t, c.URL, sid, b)
	}
	collect(len(expected), "post-failover")

	newPrimary, _, ok := c.Gateway.SessionPlacement(sid)
	if !ok || newPrimary == primary {
		t.Fatalf("session did not fail over: primary still %q", newPrimary)
	}

	// Grace period: any duplicate the failover might have re-pushed
	// would arrive right behind the expected tail.
	select {
	case e, chOpen := <-got:
		if chOpen {
			t.Fatalf("extra event after the oracle diff was exhausted: %+v", e)
		}
	case <-time.After(300 * time.Millisecond):
	}
	cancel()

	// The stream is the oracle diff: contiguous sequence numbers from
	// 1 (no duplicate, no gap at the failover boundary) and exactly
	// the oracle's windows with bit-identical distances and weights.
	for i, e := range events {
		if e.id != uint64(i+1) || e.data.Seq != e.id {
			t.Fatalf("event %d: id %d seq %d, want contiguous from 1 (duplicate or gap at the failover boundary)",
				i, e.id, e.data.Seq)
		}
		want := expected[i]
		if e.data.PatientID != want.PatientID || e.data.SessionID != want.SessionID ||
			e.data.Start != want.Start || e.data.N != want.N ||
			e.data.Relation != want.Relation ||
			e.data.Distance != want.Distance || e.data.Weight != want.Weight {
			t.Errorf("event %d diverged from the polled oracle:\n got %+v\nwant %+v", i, e.data, want)
		}
	}

	// Surface the subscription counters for the chaos CI logs.
	for _, n := range c.Nodes {
		if n.Killed() {
			continue
		}
		logMetricLines(t, "backend "+n.URL, n.URL,
			"stsmatch_sub_active", "stsmatch_sub_eval_total",
			"stsmatch_sub_events_delivered_total")
	}
}
