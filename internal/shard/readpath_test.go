package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/signal"
	"stsmatch/internal/testutil"
)

// matchFull posts a match request and returns the raw response bytes,
// the decoded result, and the X-Cache header.
func matchFull(t *testing.T, baseURL string, req server.MatchRequest) ([]byte, shard.MatchResult, string) {
	t.Helper()
	resp := testutil.PostJSON(t, baseURL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match via %s: status %d", baseURL, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res shard.MatchResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return raw, res, resp.Header.Get("X-Cache")
}

// scrapeCounter reads one unlabelled counter from a /metrics endpoint.
func scrapeCounter(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	return 0
}

// mustEqualMatches asserts two match lists are byte-identical.
func mustEqualMatches(t *testing.T, label string, want, got []server.RemoteMatch) {
	t.Helper()
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Errorf("%s: matches differ\nwant %s\ngot  %s", label, trunc(wb), trunc(gb))
	}
}

// TestFollowerReadsByteIdenticalToPrimary is the tentpole equivalence
// test: with every follower synchronously caught up, a follower-read
// scatter (large max-lag) must return byte-identical matches to both
// the legacy primary-only scatter (max-lag 0) and the single-node
// oracle, while actually serving at least one patient from a follower.
func TestFollowerReadsByteIdenticalToPrimary(t *testing.T) {
	f := newFixture(t, 2)
	seq := f.querySeq(t)

	oresp := testutil.PostJSON(t, f.oracle.URL+"/v1/match",
		server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: 10})
	oracle := testutil.Decode[server.MatchResponse](t, oresp)
	if len(oracle.Matches) == 0 {
		t.Fatal("oracle found no matches; fixture broken")
	}

	for _, k := range []int{0, 10} {
		base := server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: k}

		_, res0, _ := matchFull(t, f.cluster.URL, base)
		if res0.Degraded || res0.ShardsOK != 3 {
			t.Fatalf("k=%d: primary-only scatter degraded=%v shardsOk=%d", k, res0.Degraded, res0.ShardsOK)
		}
		if res0.PlannedPatients != 0 || res0.FollowerServed != 0 {
			t.Errorf("k=%d: max-lag 0 planned %d/follower-served %d, want 0/0 (legacy path)",
				k, res0.PlannedPatients, res0.FollowerServed)
		}

		loose := base
		loose.MaxLag = 1 << 20
		_, resL, _ := matchFull(t, f.cluster.URL, loose)
		if resL.Degraded || len(resL.UnservedPatients) != 0 {
			t.Fatalf("k=%d: follower-read scatter degraded=%v unserved=%v",
				k, resL.Degraded, resL.UnservedPatients)
		}
		if resL.PlannedPatients != 6 {
			t.Errorf("k=%d: planned %d patients, want all 6", k, resL.PlannedPatients)
		}
		if resL.FollowerServed == 0 {
			t.Errorf("k=%d: no patient served from a follower at R=2; planner never spread reads", k)
		}
		mustEqualMatches(t, fmt.Sprintf("k=%d follower-reads vs primary-only", k), res0.Matches, resL.Matches)
		if k == 10 {
			mustEqualMatches(t, "follower-reads vs oracle", oracle.Matches, resL.Matches)
		}
	}
	logMetricLines(t, "gateway", f.cluster.URL,
		"stsmatch_gateway_follower_reads_total", "stsmatch_gateway_read_refusals_total")
}

// TestMatchCacheHitMissAndInvalidation: an identical repeated query is
// a byte-identical cache hit with zero extra backend work, and any
// ingest that advances a shard's high-water mark makes the next query
// miss and recompute against the new data.
func TestMatchCacheHitMissAndInvalidation(t *testing.T) {
	f := newFixture(t, 2)
	f.cluster.Probe(1) // ensure every backend's store token is known
	seq := f.querySeq(t)
	req := server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: 10, MaxLag: 1 << 20}

	raw1, res1, cc1 := matchFull(t, f.cluster.URL, req)
	if cc1 != "miss" {
		t.Fatalf("first query X-Cache = %q, want miss", cc1)
	}
	if res1.Degraded {
		t.Fatal("healthy cluster degraded")
	}
	raw2, _, cc2 := matchFull(t, f.cluster.URL, req)
	if cc2 != "hit" {
		t.Fatalf("repeat query X-Cache = %q, want hit", cc2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cache hit is not byte-identical to the miss\nmiss: %s\nhit:  %s", trunc(raw1), trunc(raw2))
	}
	if f.cluster.Gateway.MatchCacheLen() == 0 {
		t.Error("cache reports zero entries after a stored result")
	}

	// A different max-lag is a different canonical query: its own miss.
	other := req
	other.MaxLag = 0
	if _, _, cc := matchFull(t, f.cluster.URL, other); cc != "miss" {
		t.Errorf("different max-lag served from cache (X-Cache %q)", cc)
	}

	// Ingest through the gateway (new patient, new session) advances
	// its owners' high-water marks: the exact original query must miss
	// and reflect the new data.
	ingestSession(t, f.cluster.URL, "P06", "S-P06", 206)
	ingestSession(t, f.oracle.URL, "P06", "S-P06", 206)
	raw3, res3, cc3 := matchFull(t, f.cluster.URL, req)
	if cc3 != "miss" {
		t.Fatalf("post-ingest query X-Cache = %q, want miss (stale entry replayed)", cc3)
	}
	oresp := testutil.PostJSON(t, f.oracle.URL+"/v1/match",
		server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: 10})
	oracle := testutil.Decode[server.MatchResponse](t, oresp)
	mustEqualMatches(t, "post-ingest recompute vs oracle", oracle.Matches, res3.Matches)

	// And the recomputed result is itself cached.
	raw4, _, cc4 := matchFull(t, f.cluster.URL, req)
	if cc4 != "hit" || !bytes.Equal(raw3, raw4) {
		t.Errorf("recomputed result not re-cached (X-Cache %q, identical %v)", cc4, bytes.Equal(raw3, raw4))
	}
	logMetricLines(t, "gateway", f.cluster.URL, "stsmatch_gateway_match_cache")
}

// TestStaleFollowerRefusedThenServedAtLooseBound drives the refusal
// contract end to end with a genuinely lagging follower: replication
// shipments are dropped mid-session, the gateway's tracker is then
// over-credited (claiming the follower is caught up), and a tight
// max-lag query must come back byte-identical to the primary's answer
// anyway — the follower self-verifies, refuses, and the gateway
// retries on the primary. At a loose bound the same follower serves.
func TestStaleFollowerRefusedThenServedAtLooseBound(t *testing.T) {
	ft := testutil.NewFaultTransport().Only(func(r *http.Request) bool {
		return r.URL.Path == "/v1/replicate"
	})
	c := testutil.StartCluster(t, 2, 2, func(cfg *testutil.ClusterConfig) {
		cfg.ConfigureServer = func(i int, o *server.Options) { o.ReplicateTransport = ft }
	})

	// Create the session through the gateway and ship the first half of
	// the stream cleanly, so the follower holds a genuine prefix.
	resp := testutil.PostJSON(t, c.URL+"/v1/sessions",
		server.CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 42)
	if err != nil {
		t.Fatal(err)
	}
	all := gen.Generate(90)
	half := len(all) / 2
	ingest := func(from, to int, wantReplicated string) {
		t.Helper()
		for i := from; i < to; i += 256 {
			end := min(i+256, to)
			batch := make([]server.SampleIn, 0, end-i)
			for _, s := range all[i:end] {
				batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
			}
			resp := testutil.PostJSON(t, c.URL+"/v1/sessions/S01/samples", batch)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest status %d", resp.StatusCode)
			}
			if got := resp.Header.Get(server.HeaderReplicated); got != wantReplicated {
				t.Fatalf("ingest X-Replicated = %q, want %q", got, wantReplicated)
			}
		}
	}
	ingest(0, half, "full")

	// Sever replication and keep ingesting: the primary pulls ahead,
	// the follower stays at the prefix.
	ft.SeedRandom(1, 1.0, testutil.FaultDrop)
	ingest(half, len(all), "partial")

	primaryURL, owners, ok := c.Gateway.SessionPlacement("S01")
	if !ok || len(owners) != 2 {
		t.Fatalf("placement = %q %v", primaryURL, owners)
	}
	followerURL := owners[0]
	if followerURL == primaryURL {
		followerURL = owners[1]
	}
	primFR, ok := c.Gateway.FreshnessView(primaryURL, "P01")
	if !ok || primFR.Vertices == 0 {
		t.Fatalf("no tracked primary holdings: %+v", primFR)
	}
	folFR, ok := c.Gateway.FreshnessView(followerURL, "P01")
	if !ok || folFR.Vertices == 0 || folFR.Vertices >= primFR.Vertices {
		t.Fatalf("follower holdings %+v not a lagging prefix of primary %+v", folFR, primFR)
	}

	// Anonymous query (no PatientID/SessionID): a self-identified query
	// would exclude its own stream — the only stream in this cluster —
	// and every answer would be legitimately empty.
	pr := testutil.GetJSON[server.PLRResponse](t, c.URL+"/v1/sessions/S01/plr")
	req := server.MatchRequest{Seq: pr.Vertices[len(pr.Vertices)-8:], K: 10}

	// Ground truth: the primary's own unscoped answer.
	primDirect := testutil.Decode[server.MatchResponse](t,
		testutil.PostJSON(t, primaryURL+"/v1/match", req))
	if len(primDirect.Matches) == 0 {
		t.Fatal("primary found no matches; fixture broken")
	}

	// Poison the tracker: claim the follower is fully caught up. The
	// planner will now pin the read to the follower, which must refuse.
	c.Gateway.CreditFreshness(followerURL, "P01", primFR)
	refusalsBefore := scrapeCounter(t, c.URL, "stsmatch_gateway_read_refusals_total")
	retriesBefore := scrapeCounter(t, c.URL, "stsmatch_gateway_match_retry_legs_total")

	tight := req
	tight.MaxLag = 1
	_, resT, _ := matchFull(t, c.URL, tight)
	if resT.PlannedPatients != 1 {
		t.Fatalf("tight-bound query planned %d patients, want 1", resT.PlannedPatients)
	}
	if resT.FollowerServed != 0 {
		t.Error("stale follower served a max-lag=1 read instead of refusing")
	}
	if resT.Degraded || len(resT.UnservedPatients) != 0 {
		t.Fatalf("refusal retry left the query degraded: %+v", resT)
	}
	mustEqualMatches(t, "tight bound after refusal retry", primDirect.Matches, resT.Matches)
	if got := scrapeCounter(t, c.URL, "stsmatch_gateway_read_refusals_total"); got <= refusalsBefore {
		t.Errorf("read refusals %v -> %v; follower never refused", refusalsBefore, got)
	}
	if got := scrapeCounter(t, c.URL, "stsmatch_gateway_match_retry_legs_total"); got <= retriesBefore {
		t.Errorf("retry legs %v -> %v; no recovery leg sent", retriesBefore, got)
	}

	// At a loose bound the same lagging follower is a legitimate
	// server: its answer is its own local (prefix) answer.
	folDirect := testutil.Decode[server.MatchResponse](t,
		testutil.PostJSON(t, followerURL+"/v1/match", req))
	looseReq := req
	looseReq.MaxLag = 1 << 20
	_, resL, _ := matchFull(t, c.URL, looseReq)
	if resL.FollowerServed != 1 {
		t.Fatalf("loose bound follower-served = %d, want 1", resL.FollowerServed)
	}
	if resL.Degraded || len(resL.UnservedPatients) != 0 {
		t.Fatalf("loose-bound read degraded: %+v", resL)
	}
	mustEqualMatches(t, "loose bound vs follower's local answer", folDirect.Matches, resL.Matches)
}

// TestKillPrimaryDuringFollowerReads is the chaos step: with follower
// reads live, killing a shard — both before and after the health
// checker notices — must keep results byte-identical to the oracle via
// surviving owners, with nothing unserved.
func TestKillPrimaryDuringFollowerReads(t *testing.T) {
	// The cache is disabled so every query really exercises the scatter
	// planner (a cached pre-kill answer would be correct but prove
	// nothing about failover).
	cluster := testutil.StartCluster(t, 3, 2, func(cfg *testutil.ClusterConfig) {
		cfg.Gateway.MatchCacheSize = -1
	})
	oracle := newOracleTS(t)
	for i := 0; i < 6; i++ {
		pid := fmt.Sprintf("P%02d", i)
		sid := "S-" + pid
		ingestSession(t, cluster.URL, pid, sid, int64(100+i))
		ingestSession(t, oracle.URL, pid, sid, int64(100+i))
	}
	pr := testutil.GetJSON[server.PLRResponse](t, oracle.URL+"/v1/sessions/S-P00/plr")
	req := server.MatchRequest{Seq: pr.Vertices[len(pr.Vertices)-10:],
		PatientID: "P00", SessionID: "S-P00", K: 10, MaxLag: 1 << 20}
	owant := testutil.Decode[server.MatchResponse](t,
		testutil.PostJSON(t, oracle.URL+"/v1/match",
			server.MatchRequest{Seq: req.Seq, PatientID: "P00", SessionID: "S-P00", K: 10}))
	if len(owant.Matches) == 0 {
		t.Fatal("oracle found no matches; fixture broken")
	}

	_, pre, _ := matchFull(t, cluster.URL, req)
	if pre.Degraded || pre.FollowerServed == 0 {
		t.Fatalf("pre-kill follower reads: degraded=%v followerServed=%d", pre.Degraded, pre.FollowerServed)
	}
	mustEqualMatches(t, "pre-kill", owant.Matches, pre.Matches)

	killed := cluster.Nodes[1].URL
	cluster.Kill(killed)

	// Before the prober notices, legs to the dead shard fail and their
	// planned patients must be recovered on alternates in-query.
	_, mid, _ := matchFull(t, cluster.URL, req)
	if mid.Degraded || len(mid.UnservedPatients) != 0 {
		t.Fatalf("mid-kill query degraded=%v unserved=%v shardErrors=%v",
			mid.Degraded, mid.UnservedPatients, mid.ShardErrors)
	}
	if mid.ShardErrors[killed] == "" {
		t.Error("dead shard's leg not reported")
	}
	mustEqualMatches(t, "mid-kill (pre-ejection)", owant.Matches, mid.Matches)

	// After ejection the planner routes around the dead shard entirely.
	cluster.Probe(1)
	_, post, _ := matchFull(t, cluster.URL, req)
	if post.Degraded || len(post.UnservedPatients) != 0 {
		t.Fatalf("post-ejection query degraded=%v unserved=%v", post.Degraded, post.UnservedPatients)
	}
	mustEqualMatches(t, "post-ejection", owant.Matches, post.Matches)

	logMetricLines(t, "gateway", cluster.URL,
		"stsmatch_gateway_follower_reads_total", "stsmatch_gateway_match_retry_legs_total",
		"stsmatch_gateway_read_refusals_total")
}

// TestMatchCacheConcurrentIngest hammers one query from several
// goroutines while sessions are created and ingested through the same
// gateway. Invariants: every cache hit is byte-identical to some
// previously computed miss (hits never invent data), and once all
// ingest is acknowledged the next query reflects the complete data
// set, byte-identical to an oracle holding the same union.
func TestMatchCacheConcurrentIngest(t *testing.T) {
	f := newFixture(t, 1)
	f.cluster.Probe(1)
	seq := f.querySeq(t)
	req := server.MatchRequest{Seq: seq, PatientID: f.queryPID, SessionID: f.querySID, K: 10}

	type obsd struct {
		cache string
		body  string
	}
	var mu sync.Mutex
	var seen []obsd

	const queriers = 4
	const perQuerier = 20
	var wg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perQuerier; i++ {
				resp := testutil.PostJSON(t, f.cluster.URL+"/v1/match", req)
				raw, err := io.ReadAll(resp.Body)
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("concurrent match: status %d err %v", resp.StatusCode, err)
					return
				}
				mu.Lock()
				seen = append(seen, obsd{cache: resp.Header.Get("X-Cache"), body: string(raw)})
				mu.Unlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			pid := fmt.Sprintf("P1%d", i)
			ingestSession(t, f.cluster.URL, pid, "S-"+pid, int64(300+i))
			ingestSession(t, f.oracle.URL, pid, "S-"+pid, int64(300+i))
		}
	}()
	wg.Wait()

	misses := make(map[string]bool)
	for _, o := range seen {
		if o.cache != "hit" {
			misses[o.body] = true
		}
	}
	hits := 0
	for _, o := range seen {
		if o.cache != "hit" {
			continue
		}
		hits++
		if !misses[o.body] {
			t.Fatalf("cache hit served bytes no miss ever computed: %s", trunc([]byte(o.body)))
		}
	}
	t.Logf("concurrent phase: %d responses, %d hits, %d distinct miss bodies", len(seen), hits, len(misses))

	// Quiescent now: the query must reflect all acknowledged ingest —
	// whether freshly computed or a hit on a post-ingest entry, the
	// high-water-mark key guarantees no pre-ingest bytes survive.
	raw1, res1, _ := matchFull(t, f.cluster.URL, req)
	owant := testutil.Decode[server.MatchResponse](t, testutil.PostJSON(t, f.oracle.URL+"/v1/match", req))
	mustEqualMatches(t, "settled concurrent-ingest state vs oracle", owant.Matches, res1.Matches)
	raw2, _, cc2 := matchFull(t, f.cluster.URL, req)
	if cc2 != "hit" || !bytes.Equal(raw1, raw2) {
		t.Errorf("settled repeat: X-Cache %q, byte-identical %v", cc2, bytes.Equal(raw1, raw2))
	}
}
