package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/server"
)

// Options tunes the gateway's backend clients. The zero value selects
// production-shaped defaults.
type Options struct {
	// Vnodes is the number of virtual nodes per backend on the
	// consistent-hash ring (0 = DefaultVnodes).
	Vnodes int

	// Replicas is the replication factor R: each session lives on a
	// primary plus R-1 successor replicas on the ring, and the gateway
	// fails sessions over to a replica when the primary is ejected.
	// 0 and 1 both mean unreplicated.
	Replicas int

	// Timeout bounds each individual backend request attempt
	// (0 = 5s).
	Timeout time.Duration

	// MaxRetries is the number of retry attempts (beyond the first)
	// for idempotent calls that fail with a transport error or a
	// retryable status (negative = 0, zero = default 2).
	MaxRetries int

	// BackoffBase and BackoffMax bound the exponential backoff between
	// retries; each sleep is jittered to 50-100% of the nominal value
	// (0 = 25ms base, 1s max).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// HealthInterval is the active health-probe period (0 = 2s,
	// negative = disable active checking).
	HealthInterval time.Duration

	// FailThreshold is the number of consecutive failures (probes or
	// requests) after which a backend is ejected (0 = 3).
	FailThreshold int

	// ReadmitThreshold is the number of consecutive successes an
	// ejected backend must accumulate before it is readmitted (0 = 2).
	// Values above 1 damp flapping: a backend that answers one probe
	// between crashes stays ejected.
	ReadmitThreshold int

	// Transport overrides the HTTP transport for every backend client
	// (tests inject deterministic fault-injecting transports here).
	// Nil selects a production-shaped pooled transport.
	Transport http.RoundTripper

	// TraceCapacity bounds the gateway's in-memory trace collector
	// rings (0 = obs.DefaultTraceCapacity).
	TraceCapacity int

	// TraceSlowThreshold is the latency at or above which a gateway
	// trace is pinned in the slow ring (0 = obs.DefaultSlowThreshold).
	TraceSlowThreshold time.Duration

	// MatchCacheSize bounds the gateway's /v1/match result cache in
	// entries (0 = DefaultMatchCacheSize, negative = disable caching).
	// The cache is keyed on (query signature, per-backend store
	// high-water marks), so entries go stale only by construction,
	// never by time.
	MatchCacheSize int

	// RebalanceConcurrency bounds how many session migrations a
	// rebalance drains concurrently (0 = DefaultRebalanceConcurrency).
	RebalanceConcurrency int

	// MigrateTimeout bounds one POST /v1/sessions/{sid}/migrate call —
	// a migration ships a session's full state, so it gets its own
	// budget instead of the per-request Timeout (0 =
	// DefaultMigrateTimeout).
	MigrateTimeout time.Duration

	// FreshnessInterval is the period of the gateway's background
	// /v1/shard/stats polling that seeds and refreshes the
	// follower-read freshness tracker (negative = disabled; 0 =
	// DefaultFreshnessInterval when Replicas > 1, else disabled). The
	// tracker converges from piggybacked response headers on regular
	// traffic either way, but polling is what bounds how far the
	// planner's max-lag baseline — the primary's tracked holdings —
	// can trail the primary's actual state after writes that bypass
	// this gateway (out-of-band clients, a second gateway), so it
	// defaults on whenever follower reads are possible.
	FreshnessInterval time.Duration
}

// DefaultMatchCacheSize bounds the gateway result cache when
// Options.MatchCacheSize is zero.
const DefaultMatchCacheSize = 512

// DefaultFreshnessInterval is the background freshness-polling period
// when Options.FreshnessInterval is zero and replication is enabled.
const DefaultFreshnessInterval = 5 * time.Second

// DefaultRebalanceConcurrency bounds in-flight migrations during a
// rebalance drain when Options.RebalanceConcurrency is zero.
const DefaultRebalanceConcurrency = 2

// DefaultMigrateTimeout bounds one migrate call when
// Options.MigrateTimeout is zero.
const DefaultMigrateTimeout = 60 * time.Second

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.ReadmitThreshold <= 0 {
		o.ReadmitThreshold = 2
	}
	if o.MatchCacheSize == 0 {
		o.MatchCacheSize = DefaultMatchCacheSize
	}
	if o.RebalanceConcurrency <= 0 {
		o.RebalanceConcurrency = DefaultRebalanceConcurrency
	}
	if o.MigrateTimeout <= 0 {
		o.MigrateTimeout = DefaultMigrateTimeout
	}
	if o.FreshnessInterval == 0 && o.Replicas > 1 {
		o.FreshnessInterval = DefaultFreshnessInterval
	}
	return o
}

// maxResponseBytes caps how much of a backend response the gateway
// buffers (a full-stream PLR response can be large, but not this
// large).
const maxResponseBytes = 64 << 20

// Backend is one streamd instance as seen by the gateway: a base URL,
// a pooled HTTP client, and the health state maintained by active
// probes and passive request outcomes.
type Backend struct {
	url       string
	hc        *http.Client
	healthy   atomic.Bool
	fails     atomic.Int64
	successes atomic.Int64 // consecutive successes while ejected

	// storeSeq is the backend's last seen X-Store-Seq token — its
	// mutation high-water mark, refreshed by every response including
	// health probes. The match result cache keys on it.
	storeSeq atomic.Value // string
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// Healthy reports whether the backend is currently admitted.
func (b *Backend) Healthy() bool { return b.healthy.Load() }

// StoreSeq returns the backend's last seen store high-water token
// ("" until any response has been observed).
func (b *Backend) StoreSeq() string {
	if v := b.storeSeq.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// noteStoreSeq advances the tracked token, never retreating it: match
// legs and ingest acks race on this slot, and a slow read carrying a
// pre-ingest token must not overwrite the newer high-water mark a
// write ack already published (that would let a later cache hit serve
// pre-ingest bytes under a fresh-looking key).
func (b *Backend) noteStoreSeq(tok string) {
	for {
		cur := b.StoreSeq()
		if !storeSeqNewer(tok, cur) {
			return
		}
		if b.storeSeq.CompareAndSwap(cur, tok) {
			return
		}
	}
}

// storeSeqNewer reports whether token a ("epoch-seq") supersedes cur.
// Epochs are per-process start nonces (UnixNano at boot), so across
// epochs only a numerically greater one is newer: a delayed in-flight
// response from a shard's previous incarnation must not retreat the
// token back to the old epoch after post-restart tokens were observed
// (the retreated token would reconstruct a pre-restart cache key and
// let a stale pre-restart result hit). An empty or unparsable current
// value is always superseded.
func storeSeqNewer(a, cur string) bool {
	if cur == "" {
		return true
	}
	ae, as, aok := splitStoreSeq(a)
	ce, cs, cok := splitStoreSeq(cur)
	if !cok {
		return true
	}
	if !aok {
		return false
	}
	if ae != ce {
		an, aerr := strconv.ParseInt(ae, 10, 64)
		cn, cerr := strconv.ParseInt(ce, 10, 64)
		if cerr != nil {
			return true
		}
		if aerr != nil {
			return false
		}
		return an > cn
	}
	return as > cs
}

func splitStoreSeq(tok string) (epoch string, seq uint64, ok bool) {
	i := strings.LastIndexByte(tok, '-')
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(tok[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return tok[:i], n, true
}

// Pool manages the set of backends: per-backend pooled clients,
// bounded retries with jittered exponential backoff on idempotent
// calls, and an active health checker that ejects backends after
// FailThreshold consecutive failures and readmits them only after
// ReadmitThreshold consecutive successes (flap damping).
type Pool struct {
	// mu guards backends/byURL: the set was append-only at construction
	// until elastic rebalancing made AddBackend a runtime operation.
	mu       sync.RWMutex
	backends []*Backend
	byURL    map[string]*Backend
	opts     Options
	met      *shardMetrics
	log      *slog.Logger

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewPool builds a pool over the given backend base URLs (e.g.
// "http://10.0.0.1:8750"). Backends start healthy; the active checker
// runs until Close.
func NewPool(urls []string, opts Options) (*Pool, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("shard: pool needs at least one backend")
	}
	opts = opts.withDefaults()
	p := &Pool{
		byURL: make(map[string]*Backend, len(urls)),
		opts:  opts,
		met:   newShardMetrics(obs.Default()),
		log:   obs.Logger("shard"),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, u := range urls {
		if u == "" {
			return nil, fmt.Errorf("shard: empty backend URL")
		}
		if _, dup := p.byURL[u]; dup {
			return nil, fmt.Errorf("shard: duplicate backend URL %s", u)
		}
		p.addLocked(u)
	}
	if opts.HealthInterval > 0 {
		go p.healthLoop()
	} else {
		close(p.done)
	}
	return p, nil
}

// Close stops the active health checker.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// addLocked builds and registers one backend. Callers hold p.mu (or
// own the pool exclusively, as NewPool does).
func (p *Pool) addLocked(u string) *Backend {
	transport := p.opts.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	b := &Backend{
		url: u,
		hc:  &http.Client{Transport: transport},
	}
	b.healthy.Store(true)
	b.storeSeq.Store("") // non-nil slot so noteStoreSeq can CAS
	p.met.healthy.With(u).Set(1)
	p.backends = append(p.backends, b)
	p.byURL[u] = b
	return b
}

// AddBackend registers a new backend at runtime (elastic growth). It
// is idempotent: adding a URL already in the pool returns the existing
// backend, so a crash-recovered rebalance can re-drive the add.
func (p *Pool) AddBackend(url string) (*Backend, error) {
	if url == "" {
		return nil, fmt.Errorf("shard: empty backend URL")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.byURL[url]; ok {
		return b, nil
	}
	p.log.Info("backend added", slog.String("backend", url))
	return p.addLocked(url), nil
}

// Backends returns a snapshot of every backend, healthy or not, in
// registration order.
func (p *Pool) Backends() []*Backend {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]*Backend(nil), p.backends...)
}

// ByURL returns the backend with the given base URL, or nil.
func (p *Pool) ByURL(url string) *Backend {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.byURL[url]
}

// NumHealthy returns the number of currently admitted backends.
func (p *Pool) NumHealthy() int {
	n := 0
	for _, b := range p.Backends() {
		if b.Healthy() {
			n++
		}
	}
	return n
}

// retryableStatus reports whether a response status indicates a
// transient backend-side condition worth retrying.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// backoff returns the jittered sleep before retry attempt n (n >= 1):
// base·2^(n-1) capped at max, scaled to 50-100% so synchronized
// retries from concurrent requests spread out.
func (p *Pool) backoff(n int) time.Duration {
	d := p.opts.BackoffBase << uint(n-1)
	if d > p.opts.BackoffMax || d <= 0 {
		d = p.opts.BackoffMax
	}
	return time.Duration(float64(d) * (0.5 + 0.5*rand.Float64()))
}

// do performs one logical request against a backend. Idempotent calls
// are retried up to MaxRetries times on transport errors and
// retryable statuses; non-idempotent calls get exactly one attempt.
// The returned status/body reflect the backend's response verbatim; a
// non-nil error means no usable response was obtained.
func (p *Pool) do(ctx context.Context, b *Backend, method, path string, body []byte, idempotent bool) (int, []byte, error) {
	status, respBody, _, err := p.doHdr(ctx, b, method, path, body, nil, idempotent)
	return status, respBody, err
}

// doHdr is do with per-request extra headers (the scatter planner's
// per-leg scope rides here, keeping the body canonical across legs)
// and the backend's response headers returned (freshness piggybacks).
func (p *Pool) doHdr(ctx context.Context, b *Backend, method, path string, body []byte, hdr http.Header, idempotent bool) (int, []byte, http.Header, error) {
	attempts := 1
	if idempotent {
		attempts += p.opts.MaxRetries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			p.met.retries.With(b.url).Inc()
			select {
			case <-time.After(p.backoff(attempt)):
			case <-ctx.Done():
				return 0, nil, nil, ctx.Err()
			}
		}
		// Each attempt gets its own span (annotated retry=true past the
		// first), so a traced scatter leg shows whether its latency was
		// one slow call or a retry ladder.
		actx, sp := obs.StartSpan(ctx, "backend.request")
		sp.Annotate("backend", b.url)
		sp.Annotate("path", path)
		if attempt > 0 {
			sp.Annotate("retry", true)
			sp.Annotate("attempt", attempt+1)
		}
		status, respBody, respHdr, err := p.once(actx, b, method, path, body, hdr)
		if err != nil {
			sp.Annotate("error", err.Error())
			sp.Finish()
			lastErr = fmt.Errorf("backend %s: %w", b.url, err)
			p.met.requests.With(b.url, "error").Inc()
			p.recordFailure(b)
			if ctx.Err() != nil {
				return 0, nil, nil, lastErr
			}
			continue
		}
		sp.Annotate("status", status)
		sp.Finish()
		// Any well-formed response means the backend is alive, even a
		// 4xx/5xx: ejection is about reachability, not application
		// errors.
		p.recordSuccess(b)
		if retryableStatus(status) && attempt+1 < attempts {
			lastErr = fmt.Errorf("backend %s: status %d", b.url, status)
			p.met.requests.With(b.url, "error").Inc()
			continue
		}
		p.met.requests.With(b.url, "ok").Inc()
		return status, respBody, respHdr, nil
	}
	return 0, nil, nil, lastErr
}

// once performs a single attempt with the per-attempt timeout.
func (p *Pool) once(ctx context.Context, b *Backend, method, path string, body []byte, hdr http.Header) (int, []byte, http.Header, error) {
	rctx, cancel := context.WithTimeout(ctx, p.opts.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, b.url+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	// Propagate the trace context and request ID to the backend, so one
	// logical request joins up across gateway and shard logs/traces.
	obs.InjectHeaders(rctx, req.Header)
	start := time.Now()
	resp, err := b.hc.Do(req)
	p.met.latency.With(b.url).Observe(time.Since(start).Seconds())
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return 0, nil, nil, err
	}
	// Every response refreshes the backend's store high-water token —
	// regular traffic and health probes alike — which is what keeps the
	// match result cache's keys current even for writes that bypass
	// this gateway.
	if tok := resp.Header.Get(server.HeaderStoreSeq); tok != "" {
		b.noteStoreSeq(tok)
	}
	return resp.StatusCode, respBody, resp.Header, nil
}

// recordFailure counts one failure; crossing the threshold ejects the
// backend. Any failure also resets the readmission streak, so a
// flapping backend cannot re-enter rotation between crashes.
func (p *Pool) recordFailure(b *Backend) {
	b.successes.Store(0)
	if b.fails.Add(1) >= int64(p.opts.FailThreshold) && b.healthy.CompareAndSwap(true, false) {
		p.met.healthy.With(b.url).Set(0)
		p.log.Warn("backend ejected", slog.String("backend", b.url))
	}
}

// recordSuccess resets the failure streak; an ejected backend is
// readmitted only after ReadmitThreshold consecutive successes.
func (p *Pool) recordSuccess(b *Backend) {
	b.fails.Store(0)
	if b.healthy.Load() {
		return
	}
	if b.successes.Add(1) >= int64(p.opts.ReadmitThreshold) && b.healthy.CompareAndSwap(false, true) {
		b.successes.Store(0)
		p.met.healthy.With(b.url).Set(1)
		p.log.Info("backend readmitted", slog.String("backend", b.url))
	}
}

// healthLoop actively probes every backend's /v1/healthz. Probes run
// for ejected backends too: a successful probe is the readmission
// path.
func (p *Pool) healthLoop() {
	defer close(p.done)
	t := time.NewTicker(p.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.ProbeAll()
		}
	}
}

// ProbeAll health-checks every backend once, concurrently, and
// returns when all probes finish. The background checker calls this
// on every tick; tests call it directly for deterministic
// ejection/readmission.
func (p *Pool) ProbeAll() {
	var wg sync.WaitGroup
	for _, b := range p.Backends() {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			status, _, _, err := p.once(context.Background(), b, http.MethodGet, "/v1/healthz", nil, nil)
			if err != nil || status != http.StatusOK {
				p.recordFailure(b)
				return
			}
			p.recordSuccess(b)
		}(b)
	}
	wg.Wait()
}
