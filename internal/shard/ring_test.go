package shard

import (
	"fmt"
	"strings"
	"testing"
)

func TestRingDeterministicAndConsistent(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	nodes := []string{"http://s1", "http://s2", "http://s3"}
	for _, n := range nodes {
		a.Add(n)
	}
	// Insertion order must not change the layout.
	b.Add(nodes[2])
	b.Add(nodes[0])
	b.Add(nodes[1])
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("P%04d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("layout depends on insertion order for key %s", key)
		}
	}
	// Lookups are stable.
	if a.Owner("P42") != a.Owner("P42") {
		t.Error("owner lookup not stable")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultVnodes)
	nodes := []string{"http://s1", "http://s2", "http://s3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("P%05d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		// With 128 vnodes per node, shares stay well within 2x of the
		// fair 1/3.
		if share < 1.0/6 || share > 2.0/3 {
			t.Errorf("node %s owns %.1f%% of the keyspace (counts %v)", n, 100*share, counts)
		}
	}
}

func TestRingBalanceSequentialKeys(t *testing.T) {
	// Patient IDs are short and sequential ("P001", "P002", ...). Raw
	// FNV-1a hashes such keys to adjacent ring positions, piling them
	// all onto one arc; the avalanche finalizer must spread them.
	r := NewRing(DefaultVnodes)
	nodes := []string{"http://127.0.0.1:33341", "http://127.0.0.1:33343", "http://127.0.0.1:33345"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 300
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("P%03d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 1.0/6 || share > 2.0/3 {
			t.Errorf("node %s owns %.1f%% of sequential keys (counts %v)", n, 100*share, counts)
		}
	}
}

func TestRingMinimalReshuffle(t *testing.T) {
	r := NewRing(DefaultVnodes)
	nodes := []string{"http://s1", "http://s2", "http://s3", "http://s4"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 5000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("P%05d", i))
	}
	r.Remove("http://s4")
	moved, lost := 0, 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("P%05d", i))
		if before[i] == "http://s4" {
			lost++
			continue // had to move
		}
		if after != before[i] {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node moved (consistent hashing must only remap the removed node's keys)", moved)
	}
	if lost == 0 {
		t.Error("removed node owned no keys — balance test should have caught this")
	}
}

// ownerKey flattens a replica set for comparison.
func ownerKey(owners []string) string {
	return strings.Join(owners, "|")
}

// TestRingReplicatedPlacement is the table-driven placement suite for
// replication factors 1-3: replica sets must be distinct backends,
// adding/removing a backend must move only the arcs that gain/lose
// that backend, eject-and-return must restore the exact layout, and
// per-backend load (counting every replica a backend holds) must stay
// within 1.25x of the mean over 10k synthetic patient IDs.
func TestRingReplicatedPlacement(t *testing.T) {
	nodes := []string{"http://s1", "http://s2", "http://s3", "http://s4", "http://s5"}
	const keys = 10000
	keyOf := func(i int) string { return fmt.Sprintf("P%05d", i) }

	for _, rf := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("R%d", rf), func(t *testing.T) {
			r := NewRing(DefaultVnodes)
			for _, n := range nodes {
				r.Add(n)
			}

			// Distinctness, consistency with Owner, and balance.
			counts := map[string]int{}
			before := make([]string, keys)
			for i := 0; i < keys; i++ {
				owners := r.Owners(keyOf(i), rf)
				if len(owners) != rf {
					t.Fatalf("key %s: %d owners, want %d", keyOf(i), len(owners), rf)
				}
				if owners[0] != r.Owner(keyOf(i)) {
					t.Fatalf("key %s: Owners[0] %s != Owner %s", keyOf(i), owners[0], r.Owner(keyOf(i)))
				}
				seen := map[string]bool{}
				for _, o := range owners {
					if seen[o] {
						t.Fatalf("key %s: duplicate backend %s in replica set %v", keyOf(i), o, owners)
					}
					seen[o] = true
					counts[o]++
				}
				before[i] = ownerKey(owners)
			}
			mean := float64(keys*rf) / float64(len(nodes))
			for _, n := range nodes {
				if ratio := float64(counts[n]) / mean; ratio >= 1.25 {
					t.Errorf("backend %s holds %.0f%% of the mean load (counts %v)", n, 100*ratio, counts)
				}
			}

			// Adding a backend may only change replica sets that now
			// include it.
			const added = "http://s6"
			r.Add(added)
			for i := 0; i < keys; i++ {
				after := r.Owners(keyOf(i), rf)
				if ownerKey(after) == before[i] {
					continue
				}
				has := false
				for _, o := range after {
					if o == added {
						has = true
					}
				}
				if !has {
					t.Fatalf("key %s: replica set moved %s -> %v without involving the added backend",
						keyOf(i), before[i], after)
				}
			}

			// Ejecting the backend and bringing it back restores the
			// exact pre-eject layout (the layout is deterministic, not
			// history-dependent).
			r.Remove(added)
			for i := 0; i < keys; i++ {
				if got := ownerKey(r.Owners(keyOf(i), rf)); got != before[i] {
					t.Fatalf("key %s: layout after eject-and-return %s, want original %s", keyOf(i), got, before[i])
				}
			}

			// Removing a backend may only change replica sets that held
			// it.
			const removed = "http://s3"
			r.Remove(removed)
			for i := 0; i < keys; i++ {
				after := ownerKey(r.Owners(keyOf(i), rf))
				if after == before[i] {
					continue
				}
				if !strings.Contains(before[i], removed) {
					t.Fatalf("key %s: replica set moved %s -> %s without having held the removed backend",
						keyOf(i), before[i], after)
				}
			}
		})
	}
}

func TestRingOwnersBounds(t *testing.T) {
	r := NewRing(8)
	if got := r.Owners("P1", 2); got != nil {
		t.Errorf("empty ring Owners = %v, want nil", got)
	}
	r.Add("http://s1")
	r.Add("http://s2")
	if got := r.Owners("P1", 0); got != nil {
		t.Errorf("n=0 Owners = %v, want nil", got)
	}
	// Asking for more replicas than backends yields them all, once.
	got := r.Owners("P1", 5)
	if len(got) != 2 || got[0] == got[1] {
		t.Errorf("Owners(n>len) = %v, want both backends once", got)
	}
}

func TestRingCovered(t *testing.T) {
	r := NewRing(DefaultVnodes)
	nodes := []string{"http://s1", "http://s2", "http://s3"}
	for _, n := range nodes {
		r.Add(n)
	}
	all := func(string) bool { return true }
	none := func(string) bool { return false }

	if r.Covered("http://s1", 1, all) {
		t.Error("replication factor 1 can never cover a dead backend")
	}
	if !r.Covered("http://s1", 2, all) {
		t.Error("R=2 with every successor healthy must cover")
	}
	if r.Covered("http://s1", 2, none) {
		t.Error("no healthy successors cannot cover")
	}
	// A backend not in the ring owns nothing, so it is vacuously
	// covered.
	if !r.Covered("http://nope", 2, none) {
		t.Error("non-member backend must be vacuously covered")
	}
	// With only the dead backend's successor set reduced to one other
	// node, coverage follows that node's health exactly.
	only2 := func(u string) bool { return u == "http://s2" }
	cov := r.Covered("http://s1", 3, only2)
	// At R=3 every arc of s1 has both s2 and s3 as successors, so s2
	// alone suffices.
	if !cov {
		t.Error("R=3 with one healthy successor must cover")
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if r.Owner("P1") != "" {
		t.Error("empty ring returned an owner")
	}
	r.Add("http://s1")
	r.Add("http://s1") // idempotent
	if got := r.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	if r.Owner("anything") != "http://s1" {
		t.Error("single-node ring must own every key")
	}
	r.Remove("http://missing") // no-op
	r.Remove("http://s1")
	if r.Len() != 0 || r.Owner("P1") != "" {
		t.Error("ring not empty after removing the only node")
	}
	if n := r.Nodes(); len(n) != 0 {
		t.Errorf("Nodes = %v, want empty", n)
	}
}

// TestRingMovedKeysMinimalMovement is the arc-diff contract behind
// elastic rebalancing: a membership change must move exactly the keys
// whose primary arc changed hands — every moved key's new primary is
// determined by the change, every unmoved key keeps its primary, and
// the moved fraction stays near the theoretical 1/N.
func TestRingMovedKeysMinimalMovement(t *testing.T) {
	base := []string{"http://s1", "http://s2", "http://s3"}
	keys := make([]string, 0, 1000)
	for i := 0; i < 1000; i++ {
		keys = append(keys, fmt.Sprintf("P%04d", i))
	}
	build := func(nodes []string) *Ring {
		r := NewRing(DefaultVnodes)
		for _, n := range nodes {
			r.Add(n)
		}
		return r
	}

	cases := []struct {
		name   string
		mutate func(r *Ring)
		// wantNewPrimary, when non-empty, is the only allowed new
		// primary for every moved key (the added node); otherwise the
		// moved keys' old primary must be the removed node.
		wantNewPrimary string
		wantOldPrimary string
		maxFraction    float64
	}{
		{
			name:           "add s4",
			mutate:         func(r *Ring) { r.Add("http://s4") },
			wantNewPrimary: "http://s4",
			maxFraction:    0.40, // ~1/4 expected
		},
		{
			name:           "remove s2",
			mutate:         func(r *Ring) { r.Remove("http://s2") },
			wantOldPrimary: "http://s2",
			maxFraction:    0.50, // ~1/3 expected
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := build(base)
			after := before.Clone()
			tc.mutate(after)

			moved := map[string]bool{}
			for _, k := range MovedKeys(before, after, keys, 2) {
				moved[k] = true
			}
			if len(moved) == 0 {
				t.Fatal("membership change moved no keys")
			}
			if frac := float64(len(moved)) / float64(len(keys)); frac > tc.maxFraction {
				t.Errorf("moved %.0f%% of keys, want <= %.0f%% (not minimal)",
					frac*100, tc.maxFraction*100)
			}
			for _, k := range keys {
				bp, ap := before.Owner(k), after.Owner(k)
				if moved[k] {
					if tc.wantNewPrimary != "" && ap != tc.wantNewPrimary {
						t.Fatalf("moved key %s: new primary %s, want %s", k, ap, tc.wantNewPrimary)
					}
					if tc.wantOldPrimary != "" && bp != tc.wantOldPrimary {
						t.Fatalf("moved key %s: old primary %s, want %s", k, bp, tc.wantOldPrimary)
					}
					if bp == ap {
						t.Fatalf("key %s reported moved but primary unchanged (%s)", k, bp)
					}
					continue
				}
				if bp != ap {
					t.Fatalf("key %s not reported moved but primary changed %s -> %s", k, bp, ap)
				}
			}
		})
	}
}

// TestRingCloneIndependent: a clone reproduces the layout exactly and
// mutating it leaves the original untouched.
func TestRingCloneIndependent(t *testing.T) {
	r := NewRing(64)
	r.Add("http://s1")
	r.Add("http://s2")
	c := r.Clone()
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("P%03d", i)
		if r.Owner(k) != c.Owner(k) {
			t.Fatalf("clone layout diverges at key %s", k)
		}
	}
	c.Add("http://s3")
	if r.Len() != 2 || c.Len() != 3 {
		t.Fatalf("Len = %d/%d, want 2/3: clone shares state with the original", r.Len(), c.Len())
	}
	if got := len(MovedKeys(r, c, []string{"P001"}, 1)); r.Owner("P001") == c.Owner("P001") && got != 0 {
		t.Errorf("MovedKeys reported %d moves for an unmoved key", got)
	}
}
