package shard

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndConsistent(t *testing.T) {
	a := NewRing(64)
	b := NewRing(64)
	nodes := []string{"http://s1", "http://s2", "http://s3"}
	for _, n := range nodes {
		a.Add(n)
	}
	// Insertion order must not change the layout.
	b.Add(nodes[2])
	b.Add(nodes[0])
	b.Add(nodes[1])
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("P%04d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("layout depends on insertion order for key %s", key)
		}
	}
	// Lookups are stable.
	if a.Owner("P42") != a.Owner("P42") {
		t.Error("owner lookup not stable")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(DefaultReplicas)
	nodes := []string{"http://s1", "http://s2", "http://s3"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("P%05d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		// With 128 vnodes per node, shares stay well within 2x of the
		// fair 1/3.
		if share < 1.0/6 || share > 2.0/3 {
			t.Errorf("node %s owns %.1f%% of the keyspace (counts %v)", n, 100*share, counts)
		}
	}
}

func TestRingBalanceSequentialKeys(t *testing.T) {
	// Patient IDs are short and sequential ("P001", "P002", ...). Raw
	// FNV-1a hashes such keys to adjacent ring positions, piling them
	// all onto one arc; the avalanche finalizer must spread them.
	r := NewRing(DefaultReplicas)
	nodes := []string{"http://127.0.0.1:33341", "http://127.0.0.1:33343", "http://127.0.0.1:33345"}
	for _, n := range nodes {
		r.Add(n)
	}
	counts := map[string]int{}
	const keys = 300
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("P%03d", i))]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 1.0/6 || share > 2.0/3 {
			t.Errorf("node %s owns %.1f%% of sequential keys (counts %v)", n, 100*share, counts)
		}
	}
}

func TestRingMinimalReshuffle(t *testing.T) {
	r := NewRing(DefaultReplicas)
	nodes := []string{"http://s1", "http://s2", "http://s3", "http://s4"}
	for _, n := range nodes {
		r.Add(n)
	}
	const keys = 5000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("P%05d", i))
	}
	r.Remove("http://s4")
	moved, lost := 0, 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("P%05d", i))
		if before[i] == "http://s4" {
			lost++
			continue // had to move
		}
		if after != before[i] {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node moved (consistent hashing must only remap the removed node's keys)", moved)
	}
	if lost == 0 {
		t.Error("removed node owned no keys — balance test should have caught this")
	}
}

func TestRingEmptyAndMembership(t *testing.T) {
	r := NewRing(0)
	if r.Owner("P1") != "" {
		t.Error("empty ring returned an owner")
	}
	r.Add("http://s1")
	r.Add("http://s1") // idempotent
	if got := r.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	if r.Owner("anything") != "http://s1" {
		t.Error("single-node ring must own every key")
	}
	r.Remove("http://missing") // no-op
	r.Remove("http://s1")
	if r.Len() != 0 || r.Owner("P1") != "" {
		t.Error("ring not empty after removing the only node")
	}
	if n := r.Nodes(); len(n) != 0 {
		t.Errorf("Nodes = %v, want empty", n)
	}
}
