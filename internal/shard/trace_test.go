package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"stsmatch/internal/obs"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/signal"
	"stsmatch/internal/testutil"
)

// matcherFunnelTotals snapshots the process-global matcher funnel
// counters; the in-process cluster shares one registry, so deltas
// equal the sum over every shard.
func matcherFunnelTotals() map[string]float64 {
	out := map[string]float64{}
	for _, p := range obs.Default().Gather() {
		if strings.HasPrefix(p.Name, "stsmatch_matcher_") {
			out[p.Name] = p.Value
		}
	}
	return out
}

// TestMatchProfileAcrossShards is the cross-service explain
// acceptance: ?debug=profile against a 2-shard gateway returns one
// span tree under a single trace ID with one scatter leg per shard,
// per-stage funnel spans from each backend, and per-shard candidate
// counts that sum to exactly what the query added to the funnel
// metrics.
func TestMatchProfileAcrossShards(t *testing.T) {
	c := testutil.StartCluster(t, 2, 1)
	for i := 0; i < 4; i++ {
		pid := fmt.Sprintf("P%02d", i)
		ingestSession(t, c.URL, pid, "S-"+pid, int64(300+i))
	}
	// Both shards must hold data or the scatter tree is degenerate.
	for _, n := range c.Nodes {
		st := testutil.GetJSON[server.StatsResponse](t, n.URL+"/v1/stats")
		if st.Patients == 0 {
			t.Skipf("ring placed no patients on %s; scatter profile would be degenerate", n.URL)
		}
	}
	pr := testutil.GetJSON[server.PLRResponse](t, c.URL+"/v1/sessions/S-P00/plr")
	if len(pr.Vertices) < 12 {
		t.Fatalf("query stream too short: %d vertices", len(pr.Vertices))
	}
	seq := pr.Vertices[len(pr.Vertices)-10:]

	before := matcherFunnelTotals()
	resp := testutil.PostJSON(t, c.URL+"/v1/match?debug=profile",
		server.MatchRequest{Seq: seq, PatientID: "P00", SessionID: "S-P00"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	after := matcherFunnelTotals()
	res := testutil.Decode[shard.MatchResult](t, resp)
	if res.Degraded || res.ShardsOK != 2 {
		t.Fatalf("degraded scatter: %d/%d shards", res.ShardsOK, res.ShardsQueried)
	}
	if res.Profile == nil || res.Profile.Root == nil {
		t.Fatal("no profile in gateway debug=profile response")
	}

	root := res.Profile.Root
	if root.Name != "POST /v1/match" || root.Service != "gateway" {
		t.Fatalf("root span = %s/%s, want gateway POST /v1/match", root.Service, root.Name)
	}

	// Every span in the merged tree shares the root's trace ID.
	flat := root.Flatten()
	for _, sd := range flat {
		if sd.TraceID != res.Profile.TraceID {
			t.Fatalf("span %s has trace %s, want %s", sd.Name, sd.TraceID, res.Profile.TraceID)
		}
	}

	var legs []*obs.SpanNode
	for _, child := range root.Children {
		if child.Name == "scatter.leg" {
			legs = append(legs, child)
		}
	}
	if len(legs) != 2 {
		t.Fatalf("%d scatter.leg children, want one per shard (2); tree root children: %v",
			len(legs), childNames(root))
	}

	// Each leg carries the backend's handler span and its funnel
	// stages; per-shard candidates sum to the global metric delta.
	wantStages := []string{
		"funnel.state_order", "funnel.self_exclusion", "funnel.lb_prune",
		"funnel.exact_distance", "funnel.topk_merge",
	}
	scanned, matched := 0, 0
	backends := map[string]bool{}
	for _, leg := range legs {
		byName := map[string]obs.SpanData{}
		for _, sd := range leg.Flatten() {
			byName[sd.Name] = sd
		}
		if b, _ := leg.Attrs["backend"].(string); b != "" {
			backends[b] = true
		}
		if _, ok := byName["backend.request"]; !ok {
			t.Fatalf("leg has no backend.request span: %v", flatNames(leg))
		}
		srvRoot, ok := byName["POST /v1/match"]
		if !ok || srvRoot.Service != "server" {
			t.Fatalf("leg missing the backend handler span: %v", flatNames(leg))
		}
		for _, stage := range wantStages {
			if _, ok := byName[stage]; !ok {
				t.Fatalf("leg missing funnel stage %s: %v", stage, flatNames(leg))
			}
		}
		scanned += attrInt(byName["funnel.state_order"], "candidates")
		matched += attrInt(byName["funnel.topk_merge"], "matched")
	}
	if len(backends) != 2 {
		t.Fatalf("scatter legs hit %d distinct backends, want 2: %v", len(backends), backends)
	}
	delta := int(after["stsmatch_matcher_candidates_scanned_total"] - before["stsmatch_matcher_candidates_scanned_total"])
	if scanned != delta {
		t.Errorf("profile candidates across shards = %d, funnel metric delta = %d", scanned, delta)
	}
	mdelta := int(after["stsmatch_matcher_matches_total"] - before["stsmatch_matcher_matches_total"])
	if matched != mdelta {
		t.Errorf("profile matched across shards = %d, matches metric delta = %d", matched, mdelta)
	}
}

// TestTracePropagation drives one traced ingest through the gateway of
// a replicated 2x2 cluster and asserts the caller's trace ID appears
// in the gateway's collector, the primary's collector (including the
// synchronous repl.ship span), and the follower's /v1/replicate trace:
// one trace ID across all four services in the request's path.
func TestTracePropagation(t *testing.T) {
	c := testutil.StartCluster(t, 2, 2)
	const pid, sid = "TP", "S-TP"
	resp := testutil.PostJSON(t, c.URL+"/v1/sessions",
		server.CreateSessionRequest{PatientID: pid, SessionID: sid})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session status %d", resp.StatusCode)
	}

	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 42)
	if err != nil {
		t.Fatal(err)
	}
	var batch []server.SampleIn
	for _, s := range gen.Generate(5) {
		batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	const traceID = "0123456789abcdef0123456789abcdef"
	const callerSpan = "0123456789abcdef"
	req, err := http.NewRequest(http.MethodPost, c.URL+"/v1/sessions/"+sid+"/samples", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-"+traceID+"-"+callerSpan+"-01")
	ingResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer ingResp.Body.Close()
	if ingResp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", ingResp.StatusCode)
	}
	if got := ingResp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("gateway X-Trace-Id = %q, want propagated %q", got, traceID)
	}

	primary, owners, ok := c.Gateway.SessionPlacement(sid)
	if !ok || len(owners) != 2 {
		t.Fatalf("session placement: primary=%q owners=%v ok=%v", primary, owners, ok)
	}
	var follower string
	for _, o := range owners {
		if o != primary {
			follower = o
		}
	}

	findTrace := func(col *obs.Collector, service string) obs.TraceData {
		t.Helper()
		for _, td := range col.Recent() {
			if td.TraceID == traceID {
				return td
			}
		}
		t.Fatalf("%s collector has no trace %s", service, traceID)
		return obs.TraceData{}
	}

	// Gateway: the proxied ingest continued the caller's trace, and
	// its root is a child of the caller's span.
	gtd := findTrace(c.Gateway.Traces(), "gateway")
	if gtd.Root != "POST /v1/sessions/"+sid+"/samples" {
		t.Fatalf("gateway trace root %q", gtd.Root)
	}
	for _, sd := range gtd.Spans {
		if sd.Name == gtd.Root && sd.ParentID != callerSpan {
			t.Fatalf("gateway root parent %q, want caller span %q", sd.ParentID, callerSpan)
		}
	}

	// Primary: same trace, with the synchronous replication ship span
	// to the follower.
	ptd := findTrace(c.Node(primary).Server.Traces(), "primary")
	var ship *obs.SpanData
	for i, sd := range ptd.Spans {
		if sd.Name == "repl.ship" {
			ship = &ptd.Spans[i]
		}
	}
	if ship == nil {
		t.Fatalf("primary trace has no repl.ship span: %v", traceSpanNames(ptd))
	}
	if got, _ := ship.Attrs["target"].(string); got != follower {
		t.Fatalf("repl.ship target %q, want follower %q", got, follower)
	}

	// Follower: the shipped batch arrived under the same trace ID.
	ftd := findTrace(c.Node(follower).Server.Traces(), "follower")
	if ftd.Root != "POST /v1/replicate" {
		t.Fatalf("follower trace root %q, want POST /v1/replicate", ftd.Root)
	}
}

func attrInt(sd obs.SpanData, key string) int {
	switch v := sd.Attrs[key].(type) {
	case int:
		return v
	case float64: // after a JSON round trip
		return int(v)
	}
	return 0
}

func childNames(n *obs.SpanNode) []string {
	out := make([]string, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.Name
	}
	return out
}

func flatNames(n *obs.SpanNode) []string {
	flat := n.Flatten()
	out := make([]string, len(flat))
	for i, sd := range flat {
		out[i] = sd.Name
	}
	return out
}

func traceSpanNames(td obs.TraceData) []string {
	out := make([]string, len(td.Spans))
	for i, sd := range td.Spans {
		out[i] = sd.Name
	}
	return out
}
