package signal

import (
	"fmt"
	"math"
	"math/rand"

	"stsmatch/internal/plr"
)

// This file provides the Section 6 generalization substrates: other
// motions describable by a finite set of linear states. They drive the
// heartbeat and robot-arm examples and the generalization tests.

// HeartbeatConfig parameterizes a synthetic arterial-pressure-like
// pulse train: a fast systolic upstroke, a fast initial decline, and a
// slow diastolic runoff — three linear states per beat.
type HeartbeatConfig struct {
	SampleRate float64 // Hz
	Rate       float64 // beats per minute
	RateJit    float64 // per-beat rate jitter fraction
	Amplitude  float64 // pulse pressure (arbitrary units)
	AmpJit     float64
	NoiseStd   float64
	// EctopicProb is the per-beat probability of a premature beat
	// (the heartbeat analogue of irregular breathing).
	EctopicProb float64
}

// DefaultHeartbeat returns a plausible resting configuration.
func DefaultHeartbeat() HeartbeatConfig {
	return HeartbeatConfig{
		SampleRate:  100,
		Rate:        70,
		RateJit:     0.05,
		Amplitude:   40,
		AmpJit:      0.06,
		NoiseStd:    0.4,
		EctopicProb: 0.01,
	}
}

// Heartbeat generates the pulse train.
type Heartbeat struct {
	cfg HeartbeatConfig
	rng *rand.Rand
	t   float64
}

// NewHeartbeat builds a generator.
func NewHeartbeat(cfg HeartbeatConfig, seed int64) (*Heartbeat, error) {
	if cfg.SampleRate <= 0 || cfg.Rate <= 0 || cfg.Amplitude <= 0 {
		return nil, fmt.Errorf("signal: invalid heartbeat config")
	}
	return &Heartbeat{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Generate produces samples for at least the requested duration.
func (g *Heartbeat) Generate(duration float64) []plr.Sample {
	var out []plr.Sample
	for g.t < duration {
		period := 60 / g.cfg.Rate * (1 + g.cfg.RateJit*g.rng.NormFloat64())
		amp := g.cfg.Amplitude * (1 + g.cfg.AmpJit*g.rng.NormFloat64())
		if g.rng.Float64() < g.cfg.EctopicProb {
			period *= 0.6 // premature beat
			amp *= 0.7
		}
		out = append(out, g.beat(period, amp)...)
	}
	return out
}

func (g *Heartbeat) beat(period, amp float64) []plr.Sample {
	dt := 1 / g.cfg.SampleRate
	start := g.t
	up := 0.15 * period   // systolic upstroke
	down := 0.25 * period // initial decline
	var out []plr.Sample
	for ; g.t < start+period; g.t += dt {
		u := g.t - start
		var y float64
		switch {
		case u < up:
			y = amp * u / up
		case u < up+down:
			y = amp * (1 - 0.6*(u-up)/down)
		default:
			v := (u - up - down) / (period - up - down)
			y = amp * 0.4 * (1 - v)
		}
		y += g.cfg.NoiseStd * g.rng.NormFloat64()
		out = append(out, plr.Sample{T: g.t, Pos: []float64{y}})
	}
	return out
}

// RobotArmConfig parameterizes a pick-and-place robot arm axis:
// trapezoidal moves between a home and a work position with dwell
// times — advance / dwell / return, three linear states per cycle.
type RobotArmConfig struct {
	SampleRate float64
	Travel     float64 // mm between home and work positions
	MoveTime   float64 // s per move
	DwellTime  float64 // s at each end
	Jitter     float64 // timing jitter fraction (wear, load changes)
	NoiseStd   float64
	// FaultProb is the per-cycle probability of a fault cycle
	// (stall mid-travel), the IRR analogue.
	FaultProb float64
}

// DefaultRobotArm returns a representative assembly-line axis.
func DefaultRobotArm() RobotArmConfig {
	return RobotArmConfig{
		SampleRate: 50,
		Travel:     120,
		MoveTime:   0.8,
		DwellTime:  0.5,
		Jitter:     0.04,
		NoiseStd:   0.2,
		FaultProb:  0.01,
	}
}

// RobotArm generates the axis position trace.
type RobotArm struct {
	cfg RobotArmConfig
	rng *rand.Rand
	t   float64
}

// NewRobotArm builds a generator.
func NewRobotArm(cfg RobotArmConfig, seed int64) (*RobotArm, error) {
	if cfg.SampleRate <= 0 || cfg.Travel <= 0 || cfg.MoveTime <= 0 {
		return nil, fmt.Errorf("signal: invalid robot arm config")
	}
	return &RobotArm{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Generate produces samples for at least the requested duration.
func (g *RobotArm) Generate(duration float64) []plr.Sample {
	var out []plr.Sample
	for g.t < duration {
		out = append(out, g.cycleArm()...)
	}
	return out
}

func (g *RobotArm) cycleArm() []plr.Sample {
	c := g.cfg
	jit := func(base float64) float64 { return base * (1 + c.Jitter*g.rng.NormFloat64()) }
	move, dwell := jit(c.MoveTime), jit(c.DwellTime)
	fault := g.rng.Float64() < c.FaultProb
	dt := 1 / c.SampleRate
	start := g.t
	total := 2*move + 2*dwell
	var out []plr.Sample
	for ; g.t < start+total; g.t += dt {
		u := g.t - start
		var y float64
		switch {
		case u < move:
			y = c.Travel * u / move
			if fault && u > move/2 {
				y = c.Travel / 2 // stalled mid-travel
			}
		case u < move+dwell:
			y = c.Travel
			if fault {
				y = c.Travel / 2
			}
		case u < 2*move+dwell:
			y = c.Travel * (1 - (u-move-dwell)/move)
			if fault {
				y = c.Travel / 2 * (1 - (u-move-dwell)/move)
				if y < 0 {
					y = 0
				}
			}
		default:
			y = 0
		}
		y += c.NoiseStd * g.rng.NormFloat64()
		out = append(out, plr.Sample{T: g.t, Pos: []float64{y}})
	}
	return out
}

// Tide generates a semidiurnal tide height series (Section 6's tidal
// example): the principal lunar component plus a solar component and
// weather-driven noise. Sampled coarsely (minutes), it still exhibits
// the rise / slack / fall state structure the framework needs.
type TideConfig struct {
	SampleInterval float64 // s between samples
	LunarAmp       float64 // m
	SolarAmp       float64 // m
	WeatherStd     float64 // m, slowly varying surge
	NoiseStd       float64 // m
}

// DefaultTide returns a representative coastal configuration sampled
// every 6 minutes.
func DefaultTide() TideConfig {
	return TideConfig{
		SampleInterval: 360,
		LunarAmp:       1.2,
		SolarAmp:       0.4,
		WeatherStd:     0.15,
		NoiseStd:       0.02,
	}
}

// GenerateTide produces duration seconds of tide heights: the M2 and
// S2 astronomical components (whose interference gives the spring-neap
// cycle), a slow weather-driven water-level wander, occasional storm
// surges (Gaussian bumps of a few times WeatherStd lasting hours — the
// "coastal catastrophes" of Section 6), and gauge noise.
func GenerateTide(cfg TideConfig, duration float64, seed int64) []plr.Sample {
	rng := rand.New(rand.NewSource(seed))
	const (
		lunarPeriod = 12.42 * 3600 // principal lunar semidiurnal M2
		solarPeriod = 12.00 * 3600 // principal solar semidiurnal S2
	)
	// Slow wander: two incommensurate sinusoids, 0.7 and 1.9 days.
	wanderPhase1 := 2 * math.Pi * rng.Float64()
	wanderPhase2 := 2 * math.Pi * rng.Float64()

	// Storms: ~one event per five days, amplitude 2-4x WeatherStd,
	// half-width 3-6 hours.
	type storm struct{ t0, amp, width float64 }
	var storms []storm
	for t := 0.0; t < duration; t += 86400 {
		if rng.Float64() < 0.2 {
			storms = append(storms, storm{
				t0:    t + rng.Float64()*86400,
				amp:   cfg.WeatherStd * (2 + 2*rng.Float64()),
				width: 3600 * (3 + 3*rng.Float64()),
			})
		}
	}

	var out []plr.Sample
	for t := 0.0; t < duration; t += cfg.SampleInterval {
		wander := cfg.WeatherStd * 0.7 * (math.Sin(2*math.Pi*t/(0.7*86400)+wanderPhase1) +
			math.Sin(2*math.Pi*t/(1.9*86400)+wanderPhase2))
		surge := 0.0
		for _, s := range storms {
			d := (t - s.t0) / s.width
			surge += s.amp * math.Exp(-d*d)
		}
		y := cfg.LunarAmp*math.Sin(2*math.Pi*t/lunarPeriod) +
			cfg.SolarAmp*math.Sin(2*math.Pi*t/solarPeriod) +
			wander + surge + cfg.NoiseStd*rng.NormFloat64()
		out = append(out, plr.Sample{T: t, Pos: []float64{y}})
	}
	return out
}
