package signal

import (
	"fmt"
	"math/rand"

	"stsmatch/internal/plr"
)

// PatientProfile is the ground-truth description of one synthetic
// patient: the per-patient breathing parameters plus the covariates
// the offline correlation-discovery experiments score against.
type PatientProfile struct {
	ID    string
	Class BreathingClass
	// Base is the patient's breathing configuration; each session
	// perturbs it slightly (day-to-day physiological variation).
	Base RespirationConfig
	// Age and TumorSite are synthetic covariates correlated with the
	// breathing class, standing in for the paper's clinical metadata.
	Age       int
	TumorSite string
}

// SessionData is one treatment session's raw motion stream.
type SessionData struct {
	SessionID string
	Samples   []plr.Sample
}

// PatientData bundles a profile with its generated sessions.
type PatientData struct {
	Profile  PatientProfile
	Sessions []SessionData
}

// CohortConfig controls synthetic cohort generation.
type CohortConfig struct {
	NumPatients int
	SessionsPer int     // treatment sessions per patient
	SessionDur  float64 // seconds of motion per session
	Dims        int     // spatial dimensionality (1..3)
	Seed        int64
	// ClassMix optionally fixes the number of patients per breathing
	// class; when nil, classes are assigned round-robin.
	ClassMix []int
}

// DefaultCohort returns the laptop-scale cohort used by the experiment
// harness: 12 patients x 4 sessions x 90 s at 30 Hz (~130k raw points).
// Paper scale (42 patients, ~1200 sessions, >2M points) is reachable by
// raising these numbers; the experiment binaries expose a -scale flag.
func DefaultCohort() CohortConfig {
	return CohortConfig{
		NumPatients: 12,
		SessionsPer: 4,
		SessionDur:  90,
		Dims:        1,
		Seed:        42,
	}
}

// Validate reports configuration errors.
func (c CohortConfig) Validate() error {
	if c.NumPatients <= 0 || c.SessionsPer <= 0 {
		return fmt.Errorf("signal: cohort needs at least one patient and session")
	}
	if c.SessionDur <= 0 {
		return fmt.Errorf("signal: SessionDur must be positive")
	}
	if c.Dims < 1 || c.Dims > 3 {
		return fmt.Errorf("signal: Dims must be 1..3, got %d", c.Dims)
	}
	if c.ClassMix != nil {
		total := 0
		for _, n := range c.ClassMix {
			total += n
		}
		if len(c.ClassMix) != NumClasses || total != c.NumPatients {
			return fmt.Errorf("signal: ClassMix must have %d entries summing to NumPatients", NumClasses)
		}
	}
	return nil
}

// classParams returns the class-level parameter families. Classes
// differ in period, amplitude and irregularity so that patient distance
// has real structure to discover.
func classParams(class BreathingClass, rng *rand.Rand) RespirationConfig {
	cfg := DefaultRespiration()
	switch class {
	case ClassCalm:
		cfg.Period = 4.4 + 0.4*rng.NormFloat64()
		cfg.Amplitude = 9 + 1.5*rng.NormFloat64()
		cfg.IrregularProb = 0.006
	case ClassDeep:
		cfg.Period = 5.0 + 0.5*rng.NormFloat64()
		cfg.Amplitude = 20 + 2.5*rng.NormFloat64()
		cfg.IrregularProb = 0.012
	case ClassRapid:
		cfg.Period = 2.6 + 0.25*rng.NormFloat64()
		cfg.Amplitude = 12 + 1.5*rng.NormFloat64()
		cfg.IrregularProb = 0.015
	case ClassErratic:
		cfg.Period = 3.6 + 0.6*rng.NormFloat64()
		cfg.Amplitude = 14 + 3*rng.NormFloat64()
		cfg.IrregularProb = 0.07
		cfg.PeriodJit = 0.18
		cfg.AmpJit = 0.22
	}
	if cfg.Period < 1.5 {
		cfg.Period = 1.5
	}
	if cfg.Amplitude < 4 {
		cfg.Amplitude = 4
	}
	return cfg
}

// tumorSites maps classes to plausible sites so correlation discovery
// has a categorical covariate with signal.
var tumorSites = [NumClasses][]string{
	ClassCalm:    {"upper-lobe", "mediastinum"},
	ClassDeep:    {"lower-lobe", "diaphragm"},
	ClassRapid:   {"upper-lobe", "hilum"},
	ClassErratic: {"lower-lobe", "liver"},
}

// GenerateCohort builds a full synthetic cohort deterministically from
// the configured seed.
func GenerateCohort(cfg CohortConfig) ([]PatientData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	classOf := func(i int) BreathingClass {
		if cfg.ClassMix == nil {
			return BreathingClass(i % NumClasses)
		}
		// Expand the mix: first ClassMix[0] patients are class 0, etc.
		for c, n := 0, 0; c < NumClasses; c++ {
			n += cfg.ClassMix[c]
			if i < n {
				return BreathingClass(c)
			}
		}
		return ClassErratic
	}

	out := make([]PatientData, 0, cfg.NumPatients)
	for i := 0; i < cfg.NumPatients; i++ {
		class := classOf(i)
		base := classParams(class, rng)
		base.Dims = cfg.Dims
		profile := PatientProfile{
			ID:        fmt.Sprintf("P%02d", i+1),
			Class:     class,
			Base:      base,
			Age:       45 + rng.Intn(35),
			TumorSite: tumorSites[class][rng.Intn(len(tumorSites[class]))],
		}
		pd := PatientData{Profile: profile}
		for s := 0; s < cfg.SessionsPer; s++ {
			// Day-to-day variation: each session perturbs the
			// patient's base parameters slightly.
			scfg := base
			scfg.Period *= 1 + 0.05*rng.NormFloat64()
			scfg.Amplitude *= 1 + 0.07*rng.NormFloat64()
			if scfg.Period < 1.2 {
				scfg.Period = 1.2
			}
			if scfg.Amplitude < 3 {
				scfg.Amplitude = 3
			}
			gen, err := NewRespiration(scfg, cfg.Seed*1_000_003+int64(i)*997+int64(s))
			if err != nil {
				return nil, err
			}
			pd.Sessions = append(pd.Sessions, SessionData{
				SessionID: fmt.Sprintf("%s-S%02d", profile.ID, s+1),
				Samples:   gen.Generate(cfg.SessionDur),
			})
		}
		out = append(out, pd)
	}
	return out, nil
}
