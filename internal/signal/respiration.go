// Package signal synthesizes the structured time series the paper's
// algorithms consume. The real system used 2,000,000+ raw points of
// fluoroscopically tracked tumor positions from 42 patients; that data
// is not publicly available, so this package generates cohorts whose
// statistical structure matches what the paper describes and exploits:
//
//   - state-structured breathing cycles (exhale / end-of-exhale /
//     inhale) with patient-specific period and amplitude,
//   - per-cycle amplitude changes, frequency changes and baseline
//     shifts (Figure 3a-b),
//   - cardiac-motion oscillation and spike noise (Figure 3c-d),
//   - irregular-breathing episodes (breath holds, coughs, deep
//     breaths) that the finite state model maps to IRR,
//   - multi-dimensional motion (SI / AP / LR axes) with correlated
//     but attenuated secondary axes.
//
// All generation is deterministic given a seed, so experiments are
// reproducible run-to-run.
package signal

import (
	"fmt"
	"math"
	"math/rand"

	"stsmatch/internal/plr"
)

// BreathingClass is a coarse ground-truth label for a patient's
// breathing behaviour. The synthetic cohort assigns classes so offline
// clustering experiments can be scored against known structure
// (substituting for the paper's clinical covariates).
type BreathingClass int

// The breathing classes of the synthetic cohort.
const (
	// ClassCalm: slow, shallow, very regular breathing.
	ClassCalm BreathingClass = iota
	// ClassDeep: slow, large-amplitude breathing.
	ClassDeep
	// ClassRapid: fast, moderate-amplitude breathing.
	ClassRapid
	// ClassErratic: irregular breathing with frequent episodes.
	ClassErratic
)

// NumClasses is the number of breathing classes.
const NumClasses = 4

// String names the class.
func (c BreathingClass) String() string {
	switch c {
	case ClassCalm:
		return "calm"
	case ClassDeep:
		return "deep"
	case ClassRapid:
		return "rapid"
	case ClassErratic:
		return "erratic"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// RespirationConfig parameterizes one breathing signal. Units are
// seconds and millimetres; the defaults mirror the clinical ranges the
// paper cites (≈15 mm superior-inferior motion, 30 Hz imaging).
type RespirationConfig struct {
	SampleRate float64 // Hz
	Dims       int     // 1..3 spatial dimensions

	Period    float64 // mean breathing cycle duration (s)
	PeriodJit float64 // per-cycle period jitter fraction (0.1 = ±10%)

	Amplitude float64 // mean SI amplitude (mm)
	AmpJit    float64 // per-cycle amplitude jitter fraction

	// Fractions of a cycle spent in each regular state; they should
	// sum to about 1 (normalized internally).
	ExhaleFrac, RestFrac, InhaleFrac float64

	BaselineDrift float64 // per-cycle baseline random-walk step (mm)

	CardiacFreq float64 // heartbeat oscillation frequency (Hz)
	CardiacAmp  float64 // heartbeat oscillation amplitude (mm)

	SpikeProb float64 // per-sample spike probability
	SpikeAmp  float64 // spike magnitude (mm)

	NoiseStd float64 // white measurement noise (mm)

	// IrregularProb is the per-cycle probability of starting an
	// irregular episode (breath hold, cough or deep breath).
	IrregularProb float64

	// ModDepth and ModPeriod add the slow within-session amplitude and
	// frequency drift of Figure 3a-b: amplitude and period are
	// modulated by (1 + ModDepth*sin(2*pi*t/ModPeriod + phase)), with
	// independent random phases per generator. 0 disables.
	ModDepth  float64
	ModPeriod float64 // seconds

	// Secondary axis attenuation: AP = Amplitude*APRatio,
	// LR = Amplitude*LRRatio, with small phase lags.
	APRatio, LRRatio float64
}

// DefaultRespiration returns a clinically plausible configuration.
func DefaultRespiration() RespirationConfig {
	return RespirationConfig{
		SampleRate:    30,
		Dims:          1,
		Period:        3.8,
		PeriodJit:     0.12,
		Amplitude:     15,
		AmpJit:        0.15,
		ExhaleFrac:    0.35,
		RestFrac:      0.28,
		InhaleFrac:    0.37,
		BaselineDrift: 0.4,
		ModDepth:      0.2,
		ModPeriod:     45,
		CardiacFreq:   1.2,
		CardiacAmp:    0.45,
		SpikeProb:     0.0012,
		SpikeAmp:      5,
		NoiseStd:      0.15,
		IrregularProb: 0.02,
		APRatio:       0.35,
		LRRatio:       0.15,
	}
}

// Validate reports configuration errors.
func (c RespirationConfig) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("signal: SampleRate must be positive, got %v", c.SampleRate)
	}
	if c.Dims < 1 || c.Dims > 3 {
		return fmt.Errorf("signal: Dims must be 1..3, got %d", c.Dims)
	}
	if c.Period <= 0 || c.Amplitude <= 0 {
		return fmt.Errorf("signal: Period and Amplitude must be positive")
	}
	if c.ExhaleFrac <= 0 || c.RestFrac <= 0 || c.InhaleFrac <= 0 {
		return fmt.Errorf("signal: state fractions must be positive")
	}
	return nil
}

// episodeKind enumerates irregular-breathing episodes.
type episodeKind int

const (
	episodeHold episodeKind = iota
	episodeCough
	episodeDeep
	episodeShift
)

// TimeRange is a half-open interval [Start, End) in seconds.
type TimeRange struct {
	Start, End float64
}

// Contains reports whether t lies inside the range.
func (r TimeRange) Contains(t float64) bool { return t >= r.Start && t < r.End }

// Respiration generates breathing motion samples cycle by cycle.
type Respiration struct {
	cfg RespirationConfig
	rng *rand.Rand

	t        float64
	baseline float64
	episodes []TimeRange
	// Random phases of the slow amplitude/frequency modulation.
	ampPhase, perPhase float64
}

// Episodes returns the ground-truth time ranges of the irregular
// episodes generated so far (used by tests to score the segmenter's
// IRR detection).
func (g *Respiration) Episodes() []TimeRange {
	out := make([]TimeRange, len(g.episodes))
	copy(out, g.episodes)
	return out
}

// NewRespiration builds a generator with the given seed. It returns an
// error on invalid configuration.
func NewRespiration(cfg RespirationConfig, seed int64) (*Respiration, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	return &Respiration{
		cfg:      cfg,
		rng:      rng,
		ampPhase: 2 * math.Pi * rng.Float64(),
		perPhase: 2 * math.Pi * rng.Float64(),
	}, nil
}

// modulation returns the current slow amplitude and period multipliers
// (Figure 3a-b drift).
func (g *Respiration) modulation() (ampMul, perMul float64) {
	c := g.cfg
	if c.ModDepth <= 0 || c.ModPeriod <= 0 {
		return 1, 1
	}
	w := 2 * math.Pi / c.ModPeriod
	return 1 + c.ModDepth*math.Sin(w*g.t+g.ampPhase),
		1 + c.ModDepth*math.Sin(w*g.t+g.perPhase)
}

// Generate produces samples covering at least the requested duration
// (it completes the final breathing cycle).
func (g *Respiration) Generate(duration float64) []plr.Sample {
	var out []plr.Sample
	for g.t < duration {
		if g.rng.Float64() < g.cfg.IrregularProb {
			out = append(out, g.episode()...)
			continue
		}
		ampMul, perMul := g.modulation()
		out = append(out, g.cycle(ampMul, perMul)...)
	}
	return out
}

// cycle emits one EX -> EOE -> IN breathing cycle with the given
// amplitude and period multipliers.
func (g *Respiration) cycle(ampMul, perMul float64) []plr.Sample {
	c := g.cfg
	period := c.Period * perMul * (1 + c.PeriodJit*g.rng.NormFloat64())
	if period < 0.8 {
		period = 0.8
	}
	amp := c.Amplitude * ampMul * (1 + c.AmpJit*g.rng.NormFloat64())
	if amp < 1 {
		amp = 1
	}
	fracSum := c.ExhaleFrac + c.RestFrac + c.InhaleFrac
	dEX := period * c.ExhaleFrac / fracSum
	dEOE := period * c.RestFrac / fracSum
	dIN := period * c.InhaleFrac / fracSum

	g.baseline += c.BaselineDrift * g.rng.NormFloat64()

	// Waveform shape: real breathing has a sharp end-of-inhale peak
	// and a flat end-of-exhale trough (the classic cos^2n respiratory
	// model of the medical-physics literature). Quadratic ramps give
	// exactly that: exhale starts steep off the peak and flattens into
	// the rest plateau; inhale leaves the plateau gently and arrives
	// at the peak steep.
	var out []plr.Sample
	dt := 1 / c.SampleRate
	start := g.t
	for ; g.t < start+period; g.t += dt {
		u := g.t - start
		var y float64
		switch {
		case u < dEX:
			// Falling from baseline+amp to baseline, steep first.
			v := 1 - u/dEX
			y = g.baseline + amp*v*v
		case u < dEX+dEOE:
			// Resting near baseline with a slight sag.
			v := (u - dEX) / dEOE
			y = g.baseline - 0.03*amp*math.Sin(math.Pi*v)
		default:
			// Rising back to baseline+amp, steep last.
			v := (u - dEX - dEOE) / dIN
			y = g.baseline + amp*v*v
		}
		out = append(out, g.emit(y, amp))
	}
	return out
}

// episode emits one irregular-breathing episode and records its ground
// truth range.
func (g *Respiration) episode() []plr.Sample {
	start := g.t
	var out []plr.Sample
	switch episodeKind(g.rng.Intn(4)) {
	case episodeHold:
		out = g.breathHold()
	case episodeCough:
		out = g.cough()
	case episodeShift:
		out = g.baselineShift()
	default:
		// Deep breath: one cycle with doubled amplitude and a
		// stretched period.
		out = g.cycle(2.0, 1.4)
	}
	g.episodes = append(g.episodes, TimeRange{Start: start, End: g.t})
	return out
}

// breathHold emits a flat segment of 3-8 s at the current baseline.
func (g *Respiration) breathHold() []plr.Sample {
	dur := 3 + 5*g.rng.Float64()
	dt := 1 / g.cfg.SampleRate
	var out []plr.Sample
	end := g.t + dur
	for ; g.t < end; g.t += dt {
		out = append(out, g.emit(g.baseline, g.cfg.Amplitude))
	}
	return out
}

// baselineShift is the Figure 3b artifact: the end-of-exhale tumor
// position moves to a new level (the patient settles differently) over
// one transitional cycle, and stays there.
func (g *Respiration) baselineShift() []plr.Sample {
	shift := 0.25 * g.cfg.Amplitude * (1 + g.rng.Float64()) * sign(g.rng)
	// One transition cycle while the baseline glides to the new level.
	startBase := g.baseline
	out := g.cycle(1, 1.2)
	if len(out) > 0 {
		t0, t1 := out[0].T, out[len(out)-1].T
		for i := range out {
			frac := (out[i].T - t0) / math.Max(t1-t0, 1e-9)
			out[i].Pos[0] += shift * frac
		}
	}
	g.baseline = startBase + shift
	return out
}

// cough emits 1-2 s of fast large oscillation.
func (g *Respiration) cough() []plr.Sample {
	dur := 1 + g.rng.Float64()
	dt := 1 / g.cfg.SampleRate
	var out []plr.Sample
	start := g.t
	for ; g.t < start+dur; g.t += dt {
		u := g.t - start
		y := g.baseline + 0.8*g.cfg.Amplitude*math.Sin(2*math.Pi*3.5*u)*math.Exp(-u)
		out = append(out, g.emit(y, g.cfg.Amplitude))
	}
	return out
}

// emit adds noise layers and secondary axes to the clean primary value.
func (g *Respiration) emit(y, amp float64) plr.Sample {
	c := g.cfg
	// Cardiac oscillation (Figure 3c).
	y += c.CardiacAmp * math.Sin(2*math.Pi*c.CardiacFreq*g.t)
	// Measurement noise.
	y += c.NoiseStd * g.rng.NormFloat64()
	// Spike noise (Figure 3d).
	if g.rng.Float64() < c.SpikeProb {
		y += c.SpikeAmp * (1 + g.rng.Float64()) * sign(g.rng)
	}
	pos := make([]float64, c.Dims)
	pos[0] = y
	if c.Dims > 1 {
		pos[1] = y*c.APRatio + 0.1*amp*math.Sin(2*math.Pi*0.07*g.t) + 0.1*c.NoiseStd*g.rng.NormFloat64()
	}
	if c.Dims > 2 {
		pos[2] = y*c.LRRatio + 0.05*amp*math.Cos(2*math.Pi*0.05*g.t) + 0.1*c.NoiseStd*g.rng.NormFloat64()
	}
	return plr.Sample{T: g.t, Pos: pos}
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}
