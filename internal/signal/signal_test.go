package signal

import (
	"math"
	"testing"

	"stsmatch/internal/stats"
)

func TestRespirationConfigValidate(t *testing.T) {
	good := DefaultRespiration()
	if err := good.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	mutations := []func(*RespirationConfig){
		func(c *RespirationConfig) { c.SampleRate = 0 },
		func(c *RespirationConfig) { c.Dims = 0 },
		func(c *RespirationConfig) { c.Dims = 4 },
		func(c *RespirationConfig) { c.Period = -1 },
		func(c *RespirationConfig) { c.Amplitude = 0 },
		func(c *RespirationConfig) { c.ExhaleFrac = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultRespiration()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
		if _, err := NewRespiration(cfg, 1); err == nil {
			t.Errorf("mutation %d: NewRespiration should reject", i)
		}
	}
}

func TestRespirationDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g1, _ := NewRespiration(DefaultRespiration(), seed)
		g2, _ := NewRespiration(DefaultRespiration(), seed)
		s1 := g1.Generate(30)
		s2 := g2.Generate(30)
		if len(s1) != len(s2) {
			t.Fatalf("seed %d: lengths differ %d vs %d", seed, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i].T != s2[i].T || s1[i].Pos[0] != s2[i].Pos[0] {
				t.Fatalf("seed %d: sample %d differs", seed, i)
			}
		}
	}
	// Different seeds must differ.
	g1, _ := NewRespiration(DefaultRespiration(), 1)
	g2, _ := NewRespiration(DefaultRespiration(), 2)
	s1, s2 := g1.Generate(10), g2.Generate(10)
	same := true
	for i := 0; i < len(s1) && i < len(s2); i++ {
		if s1[i].Pos[0] != s2[i].Pos[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical signals")
	}
}

func TestRespirationShape(t *testing.T) {
	cfg := DefaultRespiration()
	cfg.IrregularProb = 0
	cfg.SpikeProb = 0
	cfg.BaselineDrift = 0
	g, _ := NewRespiration(cfg, 3)
	samples := g.Generate(60)
	if len(samples) < int(0.9*60*cfg.SampleRate) {
		t.Fatalf("too few samples: %d", len(samples))
	}
	// Time monotone and near the configured rate.
	for i := 1; i < len(samples); i++ {
		dt := samples[i].T - samples[i-1].T
		if dt <= 0 || dt > 2/cfg.SampleRate {
			t.Fatalf("bad inter-sample gap %v at %d", dt, i)
		}
	}
	// Range roughly matches configured amplitude.
	var w stats.Welford
	for _, s := range samples {
		w.Add(s.Pos[0])
	}
	span := w.Max() - w.Min()
	if span < cfg.Amplitude*0.7 || span > cfg.Amplitude*2.2 {
		t.Errorf("motion span %v inconsistent with amplitude %v", span, cfg.Amplitude)
	}
}

func TestRespirationEpisodesRecorded(t *testing.T) {
	cfg := DefaultRespiration()
	cfg.IrregularProb = 0.2
	g, _ := NewRespiration(cfg, 11)
	samples := g.Generate(120)
	eps := g.Episodes()
	if len(eps) == 0 {
		t.Fatal("expected at least one episode at 20% per-cycle probability over 120s")
	}
	end := samples[len(samples)-1].T
	for i, ep := range eps {
		if ep.End <= ep.Start {
			t.Errorf("episode %d: empty range %+v", i, ep)
		}
		if ep.Start < 0 || ep.End > end+10 {
			t.Errorf("episode %d out of stream range: %+v", i, ep)
		}
		if !ep.Contains(ep.Start) || ep.Contains(ep.End) {
			t.Errorf("episode %d: Contains is not half-open", i)
		}
	}
	// Episodes slice must be a copy.
	eps[0].Start = -999
	if g.Episodes()[0].Start == -999 {
		t.Error("Episodes returned internal state")
	}
}

func TestRespirationDims(t *testing.T) {
	cfg := DefaultRespiration()
	cfg.Dims = 3
	g, _ := NewRespiration(cfg, 5)
	samples := g.Generate(20)
	var si, ap, lr stats.Welford
	for _, s := range samples {
		if len(s.Pos) != 3 {
			t.Fatalf("sample with %d dims", len(s.Pos))
		}
		si.Add(s.Pos[0])
		ap.Add(s.Pos[1])
		lr.Add(s.Pos[2])
	}
	// Attenuation ordering: SI > AP > LR motion spans.
	siSpan := si.Max() - si.Min()
	apSpan := ap.Max() - ap.Min()
	lrSpan := lr.Max() - lr.Min()
	if !(siSpan > apSpan && apSpan > lrSpan) {
		t.Errorf("axis spans not ordered: SI=%.1f AP=%.1f LR=%.1f", siSpan, apSpan, lrSpan)
	}
}

func TestGenerateCohort(t *testing.T) {
	cfg := DefaultCohort()
	cfg.NumPatients = 8
	cfg.SessionsPer = 2
	cfg.SessionDur = 20
	cohort, err := GenerateCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cohort) != 8 {
		t.Fatalf("patients = %d, want 8", len(cohort))
	}
	seen := map[string]bool{}
	for _, pd := range cohort {
		if seen[pd.Profile.ID] {
			t.Errorf("duplicate patient ID %s", pd.Profile.ID)
		}
		seen[pd.Profile.ID] = true
		if len(pd.Sessions) != 2 {
			t.Errorf("%s: sessions = %d, want 2", pd.Profile.ID, len(pd.Sessions))
		}
		for _, sess := range pd.Sessions {
			if len(sess.Samples) == 0 {
				t.Errorf("%s: empty session %s", pd.Profile.ID, sess.SessionID)
			}
		}
		if pd.Profile.TumorSite == "" {
			t.Errorf("%s: missing tumor site", pd.Profile.ID)
		}
	}
	// Round-robin class assignment covers all classes with 8 patients.
	classes := map[BreathingClass]int{}
	for _, pd := range cohort {
		classes[pd.Profile.Class]++
	}
	if len(classes) != NumClasses {
		t.Errorf("classes seen = %v, want all %d", classes, NumClasses)
	}
}

func TestCohortClassMix(t *testing.T) {
	cfg := DefaultCohort()
	cfg.NumPatients = 6
	cfg.SessionsPer = 1
	cfg.SessionDur = 10
	cfg.ClassMix = []int{3, 3, 0, 0}
	cohort, err := GenerateCohort(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, pd := range cohort {
		want := ClassCalm
		if i >= 3 {
			want = ClassDeep
		}
		if pd.Profile.Class != want {
			t.Errorf("patient %d class = %v, want %v", i, pd.Profile.Class, want)
		}
	}
	// Invalid mixes rejected.
	cfg.ClassMix = []int{1, 1, 1, 1} // sums to 4, not 6
	if _, err := GenerateCohort(cfg); err == nil {
		t.Error("expected error for mismatched ClassMix")
	}
	cfg.ClassMix = nil
	cfg.NumPatients = 0
	if _, err := GenerateCohort(cfg); err == nil {
		t.Error("expected error for zero patients")
	}
}

func TestCohortDeterminism(t *testing.T) {
	cfg := DefaultCohort()
	cfg.NumPatients = 3
	cfg.SessionsPer = 1
	cfg.SessionDur = 10
	c1, _ := GenerateCohort(cfg)
	c2, _ := GenerateCohort(cfg)
	for i := range c1 {
		s1, s2 := c1[i].Sessions[0].Samples, c2[i].Sessions[0].Samples
		if len(s1) != len(s2) {
			t.Fatalf("patient %d lengths differ", i)
		}
		for j := range s1 {
			if s1[j].Pos[0] != s2[j].Pos[0] {
				t.Fatalf("patient %d sample %d differs", i, j)
			}
		}
	}
}

func TestBreathingClassString(t *testing.T) {
	names := map[BreathingClass]string{
		ClassCalm: "calm", ClassDeep: "deep", ClassRapid: "rapid", ClassErratic: "erratic",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if BreathingClass(9).String() != "class(9)" {
		t.Errorf("unknown class name = %q", BreathingClass(9).String())
	}
}

func TestHeartbeatGenerator(t *testing.T) {
	g, err := NewHeartbeat(DefaultHeartbeat(), 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := g.Generate(30)
	if len(samples) < 2500 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	var w stats.Welford
	for i, s := range samples {
		if i > 0 && s.T <= samples[i-1].T {
			t.Fatal("non-monotone heartbeat times")
		}
		w.Add(s.Pos[0])
	}
	cfg := DefaultHeartbeat()
	if span := w.Max() - w.Min(); span < cfg.Amplitude*0.8 {
		t.Errorf("pulse span %.1f too small for amplitude %.1f", span, cfg.Amplitude)
	}
	bad := DefaultHeartbeat()
	bad.Rate = 0
	if _, err := NewHeartbeat(bad, 1); err == nil {
		t.Error("expected error for zero rate")
	}
}

func TestRobotArmGenerator(t *testing.T) {
	g, err := NewRobotArm(DefaultRobotArm(), 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := g.Generate(30)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	cfg := DefaultRobotArm()
	var w stats.Welford
	for _, s := range samples {
		w.Add(s.Pos[0])
	}
	if w.Max() < cfg.Travel*0.9 {
		t.Errorf("arm never reached work position: max %.1f", w.Max())
	}
	if w.Min() > cfg.Travel*0.1 {
		t.Errorf("arm never returned home: min %.1f", w.Min())
	}
	bad := DefaultRobotArm()
	bad.Travel = 0
	if _, err := NewRobotArm(bad, 1); err == nil {
		t.Error("expected error for zero travel")
	}
}

func TestTideGenerator(t *testing.T) {
	cfg := DefaultTide()
	samples := GenerateTide(cfg, 3*24*3600, 5) // three days
	if len(samples) < 700 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	// The M2 component should produce roughly 2 highs per lunar day:
	// count zero-crossings of the demeaned series.
	var mean float64
	for _, s := range samples {
		mean += s.Pos[0]
	}
	mean /= float64(len(samples))
	crossings := 0
	for i := 1; i < len(samples); i++ {
		a := samples[i-1].Pos[0] - mean
		b := samples[i].Pos[0] - mean
		if a*b < 0 {
			crossings++
		}
	}
	// ~5.8 semidiurnal cycles in 3 days -> ~11-12 crossings; weather
	// noise can add a few.
	if crossings < 8 || crossings > 40 {
		t.Errorf("crossings = %d, expected tidal oscillation", crossings)
	}
	if math.IsNaN(samples[len(samples)-1].Pos[0]) {
		t.Error("NaN in tide output")
	}
}
