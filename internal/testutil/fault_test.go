package testutil

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func newCountingBackend(t *testing.T, body string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(body)) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestFaultTransportScript(t *testing.T) {
	ts, hits := newCountingBackend(t, `{"ok":true}`)
	ft := NewFaultTransport().Script(FaultDrop, Fault500, FaultNone, FaultPartialBody)
	hc := &http.Client{Transport: ft}

	// Request 0: dropped before reaching the backend.
	if _, err := hc.Get(ts.URL); err == nil {
		t.Error("dropped request did not error")
	}
	if hits.Load() != 0 {
		t.Error("dropped request reached the backend")
	}

	// Request 1: synthesized 500, still no delivery.
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want injected 500", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Error("injected 500 reached the backend")
	}

	// Request 2: clean pass-through.
	resp, err = hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(b) != `{"ok":true}` {
		t.Errorf("clean request: body %q err %v", b, err)
	}
	if hits.Load() != 1 {
		t.Errorf("backend hits = %d, want 1", hits.Load())
	}

	// Request 3: delivered but the response body is cut halfway.
	resp, err = hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("partial body read err = %v, want unexpected EOF", err)
	}
	if len(b) >= len(`{"ok":true}`) {
		t.Errorf("partial body delivered %d bytes, want a strict prefix", len(b))
	}

	// Beyond the script: pass-through.
	if resp, err = hc.Get(ts.URL); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := ft.Requests(); got != 5 {
		t.Errorf("Requests = %d, want 5", got)
	}
}

func TestFaultTransportSeedDeterministic(t *testing.T) {
	ts, _ := newCountingBackend(t, "ok")
	outcomes := func(seed int64) string {
		ft := NewFaultTransport().SeedRandom(seed, 0.5, FaultDrop, Fault500)
		hc := &http.Client{Transport: ft}
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			resp, err := hc.Get(ts.URL)
			switch {
			case err != nil:
				sb.WriteByte('d')
			case resp.StatusCode == http.StatusInternalServerError:
				sb.WriteByte('5')
				resp.Body.Close()
			default:
				sb.WriteByte('.')
				resp.Body.Close()
			}
		}
		return sb.String()
	}
	a, b := outcomes(7), outcomes(7)
	if a != b {
		t.Errorf("same seed, different fault sequences:\n%s\n%s", a, b)
	}
	if !strings.ContainsAny(a, "d5") || !strings.Contains(a, ".") {
		t.Errorf("seeded plan degenerate: %s", a)
	}
	if c := outcomes(8); c == a {
		t.Errorf("different seeds produced identical sequences (suspicious): %s", c)
	}
}

func TestFaultTransportOnly(t *testing.T) {
	ts, hits := newCountingBackend(t, "ok")
	ft := NewFaultTransport().Script(FaultDrop)
	ft.Only(func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/replicate") })
	hc := &http.Client{Transport: ft}

	// Non-matching requests pass through without consuming the script.
	for i := 0; i < 3; i++ {
		resp, err := hc.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if hits.Load() != 3 || ft.Requests() != 0 {
		t.Errorf("non-matching: hits=%d counted=%d, want 3/0", hits.Load(), ft.Requests())
	}
	if _, err := hc.Get(ts.URL + "/v1/replicate"); err == nil {
		t.Error("matching request not dropped")
	}
}
