package testutil

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
)

// Node is one in-process streamd backend in a test cluster.
type Node struct {
	URL    string
	Server *server.Server
	ts     *httptest.Server
	killed atomic.Bool // listener closed or partitioned off
	dead   atomic.Bool // inbound requests aborted without a response
}

// Killed reports whether the node has been killed or partitioned off.
func (n *Node) Killed() bool { return n.killed.Load() }

// PartitionOff makes the node unreachable to every subsequent inbound
// request (connections are aborted without a response, like a machine
// dropping off the network) while leaving the listener open. Unlike
// Kill it is safe to call from inside one of the node's own request
// handlers — e.g. a migration-phase hook — where closing the listener
// would deadlock waiting for the very handler that called it.
func (n *Node) PartitionOff() {
	n.killed.Store(true)
	n.dead.Store(true)
}

// Cluster is an in-process sharded deployment: N streamd backends on
// loopback listeners behind a replication-aware gateway. Health
// probing is disabled so tests drive ejection deterministically via
// Probe; the gateway ejects after a single failed probe and readmits
// after two consecutive successes.
type Cluster struct {
	Gateway *shard.Gateway
	URL     string // gateway base URL
	Nodes   []*Node

	t  testing.TB
	ts *httptest.Server
}

// ClusterConfig customizes StartCluster beyond the (n, replicas)
// shape. Zero-value fields keep the deterministic test defaults.
type ClusterConfig struct {
	// Gateway overrides gateway options field-by-field: any non-zero
	// field replaces the test default.
	Gateway shard.Options
	// ConfigureServer, when set, mutates each backend's server options
	// before construction (e.g. to set a DataDir or inject a
	// ReplicateTransport).
	ConfigureServer func(i int, o *server.Options)
}

// StartCluster boots n streamd backends behind a gateway with the
// given replication factor and registers cleanup on t. Backends
// advertise their own loopback URL, so WAL shipments between them
// carry real source identities.
func StartCluster(t testing.TB, n, replicas int, conf ...func(*ClusterConfig)) *Cluster {
	t.Helper()
	var cfg ClusterConfig
	for _, fn := range conf {
		fn(&cfg)
	}
	c := &Cluster{t: t}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		node := &Node{}
		// The handler closes over the node so the listener (and its
		// URL) can exist before the server it fronts: backends need
		// their own URL at construction time to advertise it.
		node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if node.dead.Load() {
				panic(http.ErrAbortHandler) // sever without a response
			}
			node.Server.ServeHTTP(w, r)
		}))
		node.URL = node.ts.URL
		opts := server.Options{AdvertiseURL: node.URL}
		if cfg.ConfigureServer != nil {
			cfg.ConfigureServer(i, &opts)
		}
		srv, err := server.NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), opts)
		if err != nil {
			node.ts.Close()
			t.Fatalf("testutil: backend %d: %v", i, err)
		}
		node.Server = srv
		c.Nodes = append(c.Nodes, node)
		urls = append(urls, node.URL)
		t.Cleanup(node.ts.Close)
	}

	gopts := cfg.Gateway
	gopts.Replicas = replicas
	if gopts.HealthInterval == 0 {
		gopts.HealthInterval = -1 // tests probe deterministically
	}
	if gopts.FreshnessInterval == 0 {
		gopts.FreshnessInterval = -1 // tests call RefreshFreshness deterministically
	}
	if gopts.FailThreshold == 0 {
		gopts.FailThreshold = 1
	}
	if gopts.BackoffBase == 0 {
		gopts.BackoffBase = 1e6 // 1ms
	}
	if gopts.BackoffMax == 0 {
		gopts.BackoffMax = 5e6
	}
	gw, err := shard.NewGateway(urls, gopts)
	if err != nil {
		t.Fatalf("testutil: gateway: %v", err)
	}
	t.Cleanup(gw.Close)
	c.Gateway = gw
	c.ts = httptest.NewServer(gw)
	t.Cleanup(c.ts.Close)
	c.URL = c.ts.URL
	return c
}

// AddNode boots one additional streamd backend after the cluster is
// running and appends it to c.Nodes. The gateway is NOT told about it:
// tests grow the deployment the way an operator would, via
// Gateway.AddBackend or POST /v1/admin/backends, which also triggers
// the rebalance that moves sessions onto the new node. configure, when
// non-nil, mutates the backend's server options before construction.
func (c *Cluster) AddNode(configure func(o *server.Options)) *Node {
	if h, ok := c.t.(interface{ Helper() }); ok {
		h.Helper()
	}
	node := &Node{}
	node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if node.dead.Load() {
			panic(http.ErrAbortHandler) // sever without a response
		}
		node.Server.ServeHTTP(w, r)
	}))
	node.URL = node.ts.URL
	opts := server.Options{AdvertiseURL: node.URL}
	if configure != nil {
		configure(&opts)
	}
	srv, err := server.NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), opts)
	if err != nil {
		node.ts.Close()
		c.t.Fatalf("testutil: added backend: %v", err)
	}
	node.Server = srv
	c.Nodes = append(c.Nodes, node)
	c.t.Cleanup(node.ts.Close)
	return node
}

// Node returns the backend with the given base URL.
func (c *Cluster) Node(url string) *Node {
	for _, n := range c.Nodes {
		if n.URL == url {
			return n
		}
	}
	c.t.Fatalf("testutil: no cluster node with URL %s", url)
	return nil
}

// Kill shuts a backend's listener down hard, severing in-flight
// connections, so the process looks dead to the gateway and to its
// replication peers. The in-memory server object is left untouched —
// like a machine dropping off the network.
func (c *Cluster) Kill(url string) {
	n := c.Node(url)
	n.killed.Store(true)
	n.dead.Store(true)
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// Probe runs the gateway's health prober `times` times, synchronously.
// With the cluster's FailThreshold of 1, a single probe ejects every
// dead backend; readmission needs ReadmitThreshold consecutive
// successful probes.
func (c *Cluster) Probe(times int) {
	for i := 0; i < times; i++ {
		c.Gateway.Pool().ProbeAll()
	}
}
