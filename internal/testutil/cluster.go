package testutil

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
)

// Node is one in-process streamd backend in a test cluster.
type Node struct {
	URL    string
	Server *server.Server
	ts     *httptest.Server
	killed bool
}

// Killed reports whether the node's listener has been shut down.
func (n *Node) Killed() bool { return n.killed }

// Cluster is an in-process sharded deployment: N streamd backends on
// loopback listeners behind a replication-aware gateway. Health
// probing is disabled so tests drive ejection deterministically via
// Probe; the gateway ejects after a single failed probe and readmits
// after two consecutive successes.
type Cluster struct {
	Gateway *shard.Gateway
	URL     string // gateway base URL
	Nodes   []*Node

	t  testing.TB
	ts *httptest.Server
}

// ClusterConfig customizes StartCluster beyond the (n, replicas)
// shape. Zero-value fields keep the deterministic test defaults.
type ClusterConfig struct {
	// Gateway overrides gateway options field-by-field: any non-zero
	// field replaces the test default.
	Gateway shard.Options
	// ConfigureServer, when set, mutates each backend's server options
	// before construction (e.g. to set a DataDir or inject a
	// ReplicateTransport).
	ConfigureServer func(i int, o *server.Options)
}

// StartCluster boots n streamd backends behind a gateway with the
// given replication factor and registers cleanup on t. Backends
// advertise their own loopback URL, so WAL shipments between them
// carry real source identities.
func StartCluster(t testing.TB, n, replicas int, conf ...func(*ClusterConfig)) *Cluster {
	t.Helper()
	var cfg ClusterConfig
	for _, fn := range conf {
		fn(&cfg)
	}
	c := &Cluster{t: t}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		node := &Node{}
		// The handler closes over the node so the listener (and its
		// URL) can exist before the server it fronts: backends need
		// their own URL at construction time to advertise it.
		node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			node.Server.ServeHTTP(w, r)
		}))
		node.URL = node.ts.URL
		opts := server.Options{AdvertiseURL: node.URL}
		if cfg.ConfigureServer != nil {
			cfg.ConfigureServer(i, &opts)
		}
		srv, err := server.NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), opts)
		if err != nil {
			node.ts.Close()
			t.Fatalf("testutil: backend %d: %v", i, err)
		}
		node.Server = srv
		c.Nodes = append(c.Nodes, node)
		urls = append(urls, node.URL)
		t.Cleanup(node.ts.Close)
	}

	gopts := cfg.Gateway
	gopts.Replicas = replicas
	if gopts.HealthInterval == 0 {
		gopts.HealthInterval = -1 // tests probe deterministically
	}
	if gopts.FreshnessInterval == 0 {
		gopts.FreshnessInterval = -1 // tests call RefreshFreshness deterministically
	}
	if gopts.FailThreshold == 0 {
		gopts.FailThreshold = 1
	}
	if gopts.BackoffBase == 0 {
		gopts.BackoffBase = 1e6 // 1ms
	}
	if gopts.BackoffMax == 0 {
		gopts.BackoffMax = 5e6
	}
	gw, err := shard.NewGateway(urls, gopts)
	if err != nil {
		t.Fatalf("testutil: gateway: %v", err)
	}
	t.Cleanup(gw.Close)
	c.Gateway = gw
	c.ts = httptest.NewServer(gw)
	t.Cleanup(c.ts.Close)
	c.URL = c.ts.URL
	return c
}

// Node returns the backend with the given base URL.
func (c *Cluster) Node(url string) *Node {
	for _, n := range c.Nodes {
		if n.URL == url {
			return n
		}
	}
	c.t.Fatalf("testutil: no cluster node with URL %s", url)
	return nil
}

// Kill shuts a backend's listener down hard, severing in-flight
// connections, so the process looks dead to the gateway and to its
// replication peers. The in-memory server object is left untouched —
// like a machine dropping off the network.
func (c *Cluster) Kill(url string) {
	n := c.Node(url)
	n.killed = true
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// Probe runs the gateway's health prober `times` times, synchronously.
// With the cluster's FailThreshold of 1, a single probe ejects every
// dead backend; readmission needs ReadmitThreshold consecutive
// successful probes.
func (c *Cluster) Probe(times int) {
	for i := 0; i < times; i++ {
		c.Gateway.Pool().ProbeAll()
	}
}
