package testutil

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// PostJSON POSTs a JSON-encoded body and returns the response; the
// body is closed via t.Cleanup.
func PostJSON(t testing.TB, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// GetJSON GETs a URL, requires 200, and decodes the JSON body into T.
func GetJSON[T any](t testing.TB, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// Decode decodes a response body into T.
func Decode[T any](t testing.TB, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// Delete issues a DELETE and returns the response; the body is closed
// via t.Cleanup.
func Delete(t testing.TB, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}
