// Package testutil provides deterministic infrastructure for
// integration-testing the sharded deployment: a fault-injecting
// http.RoundTripper whose behavior is scripted per request index (or
// seeded pseudo-randomly, so chaos runs reproduce exactly), an
// in-process cluster harness that boots N streamd backends behind a
// replication-aware gateway, and small JSON helpers shared by the
// integration tests.
//
// Everything here is test-only plumbing; nothing imports it outside
// _test files.
package testutil

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault is one scripted behavior for a single HTTP request.
type Fault int

const (
	// FaultNone delivers the request untouched.
	FaultNone Fault = iota
	// FaultDrop fails the request with a transport error without
	// delivering it, like a connection reset before the request was
	// written. The caller cannot tell whether the server saw it.
	FaultDrop
	// FaultDelay sleeps for the transport's Delay before delivering.
	FaultDelay
	// Fault500 synthesizes a 500 response without delivering the
	// request, like an intermediary failing the call.
	Fault500
	// FaultPartialBody delivers the request but truncates the response
	// body halfway and fails the remainder with io.ErrUnexpectedEOF.
	FaultPartialBody
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case Fault500:
		return "500"
	case FaultPartialBody:
		return "partial-body"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// FaultTransport is an http.RoundTripper that injects scripted faults
// by request index: request 0 gets the script's first fault, request 1
// the second, and so on. Indices beyond the script fall back to the
// seeded pseudo-random plan when one is configured (deterministic per
// seed) and to FaultNone otherwise. Safe for concurrent use; note that
// under concurrency the index a request draws depends on arrival
// order, so deterministic scripts pair best with sequential callers.
type FaultTransport struct {
	// Inner performs the real round trips (nil = http.DefaultTransport).
	Inner http.RoundTripper
	// Delay is the sleep applied by FaultDelay (0 = 5ms).
	Delay time.Duration

	mu     sync.Mutex
	n      int
	script map[int]Fault
	only   func(*http.Request) bool
	rng    *rand.Rand
	prob   float64
	menu   []Fault
}

// NewFaultTransport returns a transport that passes everything through
// until faults are scripted or seeded.
func NewFaultTransport() *FaultTransport {
	return &FaultTransport{script: make(map[int]Fault)}
}

// Script sets the faults for request indices 0..len(seq)-1, replacing
// any previous script. Returns the transport for chaining.
func (ft *FaultTransport) Script(seq ...Fault) *FaultTransport {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.script = make(map[int]Fault, len(seq))
	for i, f := range seq {
		ft.script[i] = f
	}
	return ft
}

// ScriptAt sets the fault for one request index.
func (ft *FaultTransport) ScriptAt(idx int, f Fault) *FaultTransport {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.script[idx] = f
	return ft
}

// SeedRandom arms a deterministic pseudo-random fault plan for every
// request index not covered by the script: with probability prob the
// request draws one of the menu faults. The same seed always yields
// the same fault sequence.
func (ft *FaultTransport) SeedRandom(seed int64, prob float64, menu ...Fault) *FaultTransport {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.rng = rand.New(rand.NewSource(seed))
	ft.prob = prob
	ft.menu = menu
	return ft
}

// DropWhile drops every request for which active reports true and
// passes everything else through untouched — a kill switch a test can
// flip from a migration-phase hook so a node's outbound traffic dies
// at an exact protocol point.
func (ft *FaultTransport) DropWhile(active func() bool) *FaultTransport {
	return ft.Only(func(*http.Request) bool { return active() }).
		SeedRandom(1, 1.0, FaultDrop)
}

// Only restricts fault injection (and index counting) to requests the
// predicate matches; everything else passes straight through.
func (ft *FaultTransport) Only(match func(*http.Request) bool) *FaultTransport {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.only = match
	return ft
}

// Requests returns how many matching requests the transport has seen.
func (ft *FaultTransport) Requests() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.n
}

func (ft *FaultTransport) inner() http.RoundTripper {
	if ft.Inner != nil {
		return ft.Inner
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (ft *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	if ft.only != nil && !ft.only(req) {
		ft.mu.Unlock()
		return ft.inner().RoundTrip(req)
	}
	idx := ft.n
	ft.n++
	f, scripted := ft.script[idx]
	if !scripted && ft.rng != nil && len(ft.menu) > 0 && ft.rng.Float64() < ft.prob {
		f = ft.menu[ft.rng.Intn(len(ft.menu))]
	}
	delay := ft.Delay
	ft.mu.Unlock()

	switch f {
	case FaultDrop:
		if req.Body != nil {
			req.Body.Close() //nolint:errcheck
		}
		return nil, fmt.Errorf("testutil: injected drop (request %d)", idx)
	case Fault500:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body) //nolint:errcheck
			req.Body.Close()              //nolint:errcheck
		}
		return &http.Response{
			Status:     "500 Internal Server Error",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"testutil: injected 500"}`)),
			Request: req,
		}, nil
	case FaultDelay:
		if delay <= 0 {
			delay = 5 * time.Millisecond
		}
		time.Sleep(delay)
	}
	resp, err := ft.inner().RoundTrip(req)
	if err != nil || f != FaultPartialBody {
		return resp, err
	}
	full, rerr := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if rerr != nil {
		return nil, rerr
	}
	resp.Body = io.NopCloser(io.MultiReader(bytes.NewReader(full[:len(full)/2]), errReader{}))
	// Keep the original announced length: readers that trust it see a
	// short body, readers that drain see an unexpected EOF.
	resp.ContentLength = int64(len(full))
	return resp, nil
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }
