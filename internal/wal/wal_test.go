package wal

import (
	"os"
	"path/filepath"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// mkVerts builds n valid vertices starting at time t0 spaced 1 s,
// cycling the regular states.
func mkVerts(t0 float64, n int) plr.Sequence {
	states := []plr.State{plr.EX, plr.EOE, plr.IN}
	seq := make(plr.Sequence, n)
	for i := range seq {
		seq[i] = plr.Vertex{
			T:     t0 + float64(i),
			Pos:   []float64{float64(i) * 0.5},
			State: states[i%len(states)],
		}
	}
	return seq
}

// appendSession writes the standard record sequence of one ingesting
// session: patient, stream, vertex batches, anchors.
func appendSession(t *testing.T, l *Log, pid, sid string, verts plr.Sequence) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(Record{Type: TypePatientUpsert, Patient: store.PatientInfo{ID: pid, Class: "calm", Age: 61}}))
	must(l.Append(Record{Type: TypeStreamOpen, PatientID: pid, SessionID: sid}))
	for i := 0; i < len(verts); i += 4 {
		end := min(i+4, len(verts))
		must(l.Append(Record{Type: TypeVertexAppend, PatientID: pid, SessionID: sid, Vertices: verts[i:end]}))
		last := verts[end-1]
		must(l.Append(Record{
			Type: TypeSessionAnchor, PatientID: pid, SessionID: sid,
			Samples: uint64(end * 30), AnchorT: last.T + 0.4, AnchorPos: []float64{last.Pos[0] + 0.1},
		}))
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fresh {
		t.Error("expected fresh directory")
	}
	verts := mkVerts(0, 12)
	appendSession(t, l, "P1", "S1", verts)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, res2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res2.Fresh {
		t.Error("second open should not be fresh")
	}
	if res2.RecordsTruncated != 0 {
		t.Errorf("truncated %d records on a clean log", res2.RecordsTruncated)
	}
	if res2.RecordsReplayed == 0 {
		t.Error("no records replayed")
	}
	p := res2.DB.Patient("P1")
	if p == nil {
		t.Fatal("patient not recovered")
	}
	if p.Info.Class != "calm" || p.Info.Age != 61 {
		t.Errorf("patient info not recovered: %+v", p.Info)
	}
	st := p.StreamBySession("S1")
	if st == nil {
		t.Fatal("stream not recovered")
	}
	if st.Len() != len(verts) {
		t.Errorf("recovered %d vertices, want %d", st.Len(), len(verts))
	}
	if len(res2.Sessions) != 1 {
		t.Fatalf("recovered %d open sessions, want 1", len(res2.Sessions))
	}
	ss := res2.Sessions[0]
	if ss.PatientID != "P1" || ss.SessionID != "S1" {
		t.Errorf("session identity = %+v", ss)
	}
	if ss.LastT != verts[len(verts)-1].T+0.4 {
		t.Errorf("anchor LastT = %v", ss.LastT)
	}
	if ss.Samples != uint64(len(verts)*30) {
		t.Errorf("anchor Samples = %d", ss.Samples)
	}

	// The recovered log keeps accepting appends with contiguous LSNs.
	if err := l2.Append(Record{Type: TypeSessionClose, SessionID: "S1"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionCloseRemovesSession(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(0, 6))
	if err := l.Append(Record{Type: TypeSessionClose, SessionID: "S1"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 0 {
		t.Errorf("closed session resurrected: %+v", res.Sessions)
	}
	if res.DB.NumVertices() != 6 {
		t.Errorf("stream history lost on close: %d vertices", res.DB.NumVertices())
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(0, 8))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: a partial frame at the end of the segment.
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("expected 1 segment, got %d", len(segs))
	}
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("recovery must tolerate a torn tail: %v", err)
	}
	if res.RecordsTruncated != 1 {
		t.Errorf("RecordsTruncated = %d, want 1", res.RecordsTruncated)
	}
	if res.BytesTruncated != 3 {
		t.Errorf("BytesTruncated = %d, want 3", res.BytesTruncated)
	}
	if got := res.DB.NumVertices(); got != 8 {
		t.Errorf("recovered %d vertices, want all 8", got)
	}
	// The tear is gone: appends resume and the next recovery is clean.
	if err := l2.Append(Record{Type: TypeSessionClose, SessionID: "S1"}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, res3, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.RecordsTruncated != 0 {
		t.Errorf("second recovery still truncating: %d", res3.RecordsTruncated)
	}
	if len(res3.Sessions) != 0 {
		t.Error("post-tear append lost")
	}
}

func TestRecoveryStopsAtCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(0, 8))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the record stream: everything
	// from that record on is discarded, everything before survives.
	segs := segFiles(t, dir)
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	mid := segHdrLen + (len(data)-segHdrLen)/2
	data[mid] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatalf("recovery must tolerate mid-log corruption: %v", err)
	}
	if res.RecordsTruncated != 1 {
		t.Errorf("RecordsTruncated = %d, want 1", res.RecordsTruncated)
	}
	if res.BytesTruncated == 0 {
		t.Error("no bytes truncated")
	}
	got := res.DB.NumVertices()
	if got == 0 || got >= 8 {
		t.Errorf("recovered %d vertices, want a proper prefix of 8", got)
	}
}

// TestRecoveryReplacesTornHeaderSegment models a crash between
// segment creation and header fsync: the tail segment's header is
// torn, so it cannot be resumed (appends at offset 0 would be
// headerless and unreadable). Recovery must replace it with a fresh,
// properly-headered segment, and everything appended afterwards must
// survive the next recovery.
func TestRecoveryReplacesTornHeaderSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, SegmentMaxBytes: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(0, 24))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	// Tear the newest segment's header down to a partial write.
	if err := os.Truncate(segs[len(segs)-1], int64(segHdrLen-9)); err != nil {
		t.Fatal(err)
	}

	l2, res, err := Open(Options{Dir: dir, SegmentMaxBytes: 512}, nil)
	if err != nil {
		t.Fatalf("recovery must tolerate a torn segment header: %v", err)
	}
	if res.RecordsTruncated != 1 {
		t.Errorf("RecordsTruncated = %d, want 1", res.RecordsTruncated)
	}
	recovered := res.DB.NumVertices()
	if recovered == 0 {
		t.Fatal("earlier segments lost")
	}
	// Writes after the torn-header recovery must be durable: the
	// replacement segment needs a valid header or the next recovery
	// truncates everything at offset 0.
	if err := l2.Append(Record{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(1000, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	_, res3, err := Open(Options{Dir: dir, SegmentMaxBytes: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.RecordsTruncated != 0 {
		t.Errorf("recovery after torn-header replacement truncated %d records", res3.RecordsTruncated)
	}
	if got := res3.DB.NumVertices(); got != recovered+2 {
		t.Errorf("post-replacement appends lost: %d vertices, want %d", got, recovered+2)
	}
}

// TestUnsupportedSegmentVersionFailsOpen: a version this binary does
// not understand is not a torn record — Open must fail and leave the
// segment untouched for a binary that can read it.
func TestUnsupportedSegmentVersionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(0, 8))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := segFiles(t, dir)[0]
	before, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{99, 0}, 4); err != nil { // version field
		t.Fatal(err)
	}
	f.Close()

	if _, _, err := Open(Options{Dir: dir}, nil); err == nil {
		t.Fatal("Open accepted an unsupported segment version")
	}
	after, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("failed Open modified the segment: %d bytes, was %d", len(after), len(before))
	}

	// Restoring the version makes the directory fully recoverable —
	// nothing was truncated or deleted.
	f, err = os.OpenFile(seg, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{segVersion, 0}, 4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecordsTruncated != 0 || res.DB.NumVertices() != 8 {
		t.Errorf("restored segment not fully recovered: truncated=%d vertices=%d",
			res.RecordsTruncated, res.DB.NumVertices())
	}
}

// TestFallbackSnapshotReplaysContiguousTail pins the KeepSnapshots
// contract: when the newest snapshot is unreadable, recovery falls
// back to the previous one, and compaction must have retained every
// segment that fallback needs — no silent hole between the older
// snapshot and the surviving WAL tail.
func TestFallbackSnapshotReplaysContiguousTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentMaxBytes: 256, KeepSnapshots: 2}
	reopen := func(l *Log) (*Log, *RecoveryResult) {
		t.Helper()
		if l != nil {
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		}
		l2, res, err := Open(opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		return l2, res
	}

	l, _, err := Open(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(0, 8))
	l, res := reopen(l)
	if _, err := l.Snapshot(res.DB, res.Sessions, nil); err != nil { // snapshot A
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(100, 8)) // rotates several segments
	l, res = reopen(l)
	if _, err := l.Snapshot(res.DB, res.Sessions, nil); err != nil { // snapshot B compacts
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(200, 4))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot; recovery must fall back to A and
	// still rebuild the full 20-vertex state from retained segments.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.db"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d snapshots on disk, want 2", len(snaps))
	}
	fi, err := os.Stat(snaps[len(snaps)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snaps[len(snaps)-1], fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	_, res2, err := Open(opts, nil)
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	if got := res2.DB.NumVertices(); got != 20 {
		t.Errorf("fallback recovered %d vertices, want 20", got)
	}
	if len(res2.Sessions) != 1 {
		t.Errorf("fallback lost the open session: %+v", res2.Sessions)
	}
}

func TestSnapshotCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotations.
	l, _, err := Open(Options{Dir: dir, SegmentMaxBytes: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	verts := mkVerts(0, 60)
	appendSession(t, l, "P1", "S1", verts)
	if len(segFiles(t, dir)) < 3 {
		t.Fatalf("expected several segments, got %d", len(segFiles(t, dir)))
	}

	// Rebuild the DB the same way recovery would, then snapshot it.
	l.Close()
	l, res, err := Open(Options{Dir: dir, SegmentMaxBytes: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Snapshot(res.DB, res.Sessions, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 {
		t.Fatal("snapshot LSN is 0")
	}
	if got := len(segFiles(t, dir)); got != 1 {
		t.Errorf("%d segments survive compaction, want 1 (the active one)", got)
	}
	l.Close()

	// Recovery now starts from the snapshot and replays nothing.
	_, res2, err := Open(Options{Dir: dir, SegmentMaxBytes: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SnapshotLSN != lsn {
		t.Errorf("SnapshotLSN = %d, want %d", res2.SnapshotLSN, lsn)
	}
	if res2.RecordsReplayed != 0 {
		t.Errorf("replayed %d records past a fresh snapshot", res2.RecordsReplayed)
	}
	if res2.DB.NumVertices() != len(verts) {
		t.Errorf("snapshot recovered %d vertices, want %d", res2.DB.NumVertices(), len(verts))
	}
	if len(res2.Sessions) != 1 {
		t.Errorf("snapshot lost the open session manifest: %+v", res2.Sessions)
	}
}

func TestSnapshotPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, KeepSnapshots: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	db := store.NewDB()
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Type: TypePatientUpsert, Patient: store.PatientInfo{ID: "P1"}}); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Snapshot(db, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.db"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Errorf("%d snapshots kept, want 2", len(snaps))
	}
}

func TestFreshDirSeedsInitialSnapshot(t *testing.T) {
	dir := t.TempDir()
	initial := store.NewDB()
	p, err := initial.AddPatient(store.PatientInfo{ID: "HIST"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddStream("old").Append(mkVerts(0, 5)...); err != nil {
		t.Fatal(err)
	}

	l, res, err := Open(Options{Dir: dir}, initial)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fresh || res.DB != initial {
		t.Error("fresh open should adopt the initial database")
	}
	l.Close()

	// Restart without the preload: history must come back from disk.
	_, res2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fresh {
		t.Error("seeded directory reported fresh")
	}
	if res2.DB.NumVertices() != 5 {
		t.Errorf("preloaded history not durable: %d vertices", res2.DB.NumVertices())
	}
}

func TestRecordRoundTripAllTypes(t *testing.T) {
	recs := []Record{
		{Type: TypePatientUpsert, LSN: 1, Patient: store.PatientInfo{ID: "P", Class: "calm", TumorSite: "lung", Age: 70}},
		{Type: TypeStreamOpen, LSN: 2, PatientID: "P", SessionID: "S"},
		{Type: TypeVertexAppend, LSN: 3, PatientID: "P", SessionID: "S", Vertices: mkVerts(10, 3)},
		{Type: TypeSessionClose, LSN: 4, SessionID: "S"},
		{Type: TypeSessionAnchor, LSN: 5, PatientID: "P", SessionID: "S", Samples: 99, AnchorT: 12.5, AnchorPos: []float64{1, 2, 3}},
	}
	for _, rec := range recs {
		got, err := decodePayload(encodePayload(rec))
		if err != nil {
			t.Fatalf("%s: %v", rec.Type, err)
		}
		if got.Type != rec.Type || got.LSN != rec.LSN ||
			got.PatientID != rec.PatientID || got.SessionID != rec.SessionID ||
			got.Patient != rec.Patient || got.Samples != rec.Samples ||
			got.AnchorT != rec.AnchorT || len(got.AnchorPos) != len(rec.AnchorPos) ||
			len(got.Vertices) != len(rec.Vertices) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", rec.Type, got, rec)
		}
	}
}
