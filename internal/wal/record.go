package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// Type identifies a WAL record. The first four are the store/session
// mutations named in the durability design; SessionAnchor additionally
// persists each ingest batch's raw-sample anchor so a recovered
// session predicts from exactly the pre-crash observation.
type Type uint8

// The WAL record types.
const (
	TypePatientUpsert Type = 1 // patient created (or metadata updated)
	TypeStreamOpen    Type = 2 // session stream created under a patient
	TypeVertexAppend  Type = 3 // PLR vertices appended to a stream
	TypeSessionClose  Type = 4 // ingestion session closed
	TypeSessionAnchor Type = 5 // latest raw observation of an open session

	// Replication record types (PR 5). They ride both in replication
	// batches (internal/wal Batch) and in follower WALs, so recovery
	// and the fuzzers handle them like any other record.

	// TypeReplicaSnapshot carries one session's full replicated state:
	// patient info, the complete PLR sequence, and the raw-sample
	// anchor. A primary sends it to a follower whose cursor has a gap
	// (catch-up) and as the first record of a post-promotion stream; a
	// follower journals it so its own recovery rebuilds the stream
	// without reopening the session locally.
	TypeReplicaSnapshot Type = 6

	// TypeReplicaPromote marks a failover: the node journaling it was
	// promoted from replica to primary for the session. Recovery treats
	// it like a session-open with the embedded anchor, so a promoted
	// node that crashes later still resumes the session as primary.
	// Epoch fences zombie primaries: batches with a lower epoch are
	// rejected by followers.
	TypeReplicaPromote Type = 7

	// TypeIndexConfig persists the window-signature index configuration
	// (PR 7). The index itself is derived data rebuilt from the
	// recovered database, so the record carries only the Config needed
	// to rebuild it identically; last record wins, and snapshots embed
	// the same config so compaction cannot lose it.
	TypeIndexConfig Type = 8

	// Standing-subscription record types (PR 8). A subscription's
	// events are a deterministic function of (pattern, stream content,
	// per-stream cursor), so the log journals only the registration
	// state and lifecycle transitions; recovery re-derives the events
	// by replaying vertex appends against the registered subscriptions
	// in log order, and snapshots embed the full materialized state
	// (cursors, event numbering, undelivered buffer) so compaction
	// cannot lose events whose source records it deleted.

	// TypeSubUpsert registers (or, replicated, re-arms) a standing
	// subscription, carrying its full durable state: pattern, scope,
	// threshold/k, per-stream cursors, event numbering and any
	// undelivered events. Journaled and fsynced before the create is
	// acknowledged.
	TypeSubUpsert Type = 9

	// TypeSubDelete removes a subscription. Journaled and fsynced
	// before the delete is acknowledged — like a session close — so a
	// deleted subscription never resurrects after recovery.
	TypeSubDelete Type = 10

	// TypeSubAck advances a subscription's delivery high-water mark:
	// journaled when a consumer acknowledges receipt (a reconnect with
	// Last-Event-ID), so a recovered node knows which events were
	// already delivered.
	TypeSubAck Type = 11

	// TypeSessionMigrate journals one phase transition of a live
	// session migration (PR 10). The source journals MigratePrepare
	// (fsynced) before asking the target to promote — a restart then
	// resumes the session fenced, so no write can land in the ambiguous
	// window — and MigrateCommit (fsynced) once the target is primary:
	// the session is closed here and a durable tombstone answers stale
	// routes with 410 + the target URL. MigrateAbort rolls a prepare
	// back (cutover failed; the session keeps serving here). Snapshots
	// embed the surviving migration states so compaction cannot lose a
	// tombstone or an in-flight prepare.
	TypeSessionMigrate Type = 12
)

// Migration phases carried by TypeSessionMigrate records and
// MigrationState entries.
const (
	MigratePrepare uint8 = 1 // fenced; cutover to Target in flight
	MigrateCommit  uint8 = 2 // target promoted; session tombstoned here
	MigrateAbort   uint8 = 3 // cutover failed; prepare rolled back
)

// MigrationState is the durable migration state of one session on the
// source shard: an in-flight prepare (the session resumes fenced) or a
// committed tombstone (the session is gone; Target says where).
type MigrationState struct {
	SessionID string
	PatientID string
	Target    string // target shard's advertised base URL
	Epoch     uint64 // target's fencing epoch at cutover (0 until commit)
	Phase     uint8  // MigratePrepare or MigrateCommit
}

// String returns the record type name.
func (t Type) String() string {
	switch t {
	case TypePatientUpsert:
		return "patient-upsert"
	case TypeStreamOpen:
		return "stream-open"
	case TypeVertexAppend:
		return "vertex-append"
	case TypeSessionClose:
		return "session-close"
	case TypeSessionAnchor:
		return "session-anchor"
	case TypeReplicaSnapshot:
		return "replica-snapshot"
	case TypeReplicaPromote:
		return "replica-promote"
	case TypeIndexConfig:
		return "index-config"
	case TypeSubUpsert:
		return "sub-upsert"
	case TypeSubDelete:
		return "sub-delete"
	case TypeSubAck:
		return "sub-ack"
	case TypeSessionMigrate:
		return "session-migrate"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one logical WAL entry. Only the fields relevant to Type
// are encoded; LSN is assigned by Log.Append.
type Record struct {
	Type Type
	LSN  uint64

	Patient   store.PatientInfo // TypePatientUpsert, TypeReplicaSnapshot
	PatientID string            // TypeStreamOpen, TypeVertexAppend, TypeSessionAnchor, TypeReplicaSnapshot, TypeReplicaPromote
	SessionID string            // all but TypePatientUpsert
	Vertices  plr.Sequence      // TypeVertexAppend, TypeReplicaSnapshot

	Samples   uint64    // TypeSessionAnchor, TypeReplicaSnapshot, TypeReplicaPromote
	AnchorT   float64   // TypeSessionAnchor, TypeReplicaSnapshot, TypeReplicaPromote
	AnchorPos []float64 // TypeSessionAnchor, TypeReplicaSnapshot, TypeReplicaPromote

	// Epoch is the replication fencing term (TypeReplicaPromote): each
	// promotion increments it, and followers reject batches from lower
	// epochs so a deposed primary cannot overwrite a promoted one.
	Epoch uint64 // TypeReplicaPromote, TypeSessionMigrate

	// Target is the migration target's advertised base URL; Phase is
	// the migration phase (MigratePrepare/Commit/Abort).
	Target string // TypeSessionMigrate
	Phase  uint8  // TypeSessionMigrate

	// Index is the window-signature index configuration.
	Index IndexConfig // TypeIndexConfig

	// Sub carries a standing subscription's full durable state.
	Sub *SubState // TypeSubUpsert

	// SubID names the subscription a lifecycle record applies to.
	SubID string // TypeSubDelete, TypeSubAck

	// SubAck is the acknowledged delivery high-water mark.
	SubAck uint64 // TypeSubAck
}

// SubState is the durable state of one standing subscription: the
// registration (pattern, scope, acceptance rule) plus the materialized
// evaluation state (per-stream cursors, event numbering, undelivered
// buffer). It mirrors subscribe.Subscription without importing it,
// keeping the WAL free of matcher dependencies.
type SubState struct {
	ID        string
	PatientID string // scope + query provenance; "" = every patient
	SessionID string // "" = every session of the scoped patient(s)
	Threshold float64
	K         uint32
	Pattern   plr.Sequence

	NextSeq   uint64 // next event sequence number (1-based)
	Delivered uint64 // delivery high-water mark (consumer-acked)
	Cursors   []SubCursor
	Events    []SubEvent // emitted, not yet acknowledged
}

// SubCursor is one stream's evaluation cursor inside a subscription:
// windows ending below Len have been evaluated (or predate the
// subscription's registration baseline).
type SubCursor struct {
	PatientID string
	SessionID string
	Len       uint64
}

// SubEvent is one emitted match event in durable form.
type SubEvent struct {
	Seq       uint64
	PatientID string
	SessionID string
	Start     uint32
	N         uint32
	Relation  uint8
	Distance  float64
	Weight    float64
	EndT      float64
	At        float64 // emission wall time, unix seconds (delivery lag)
}

// IndexConfig is the journaled window-signature index configuration:
// enough to rebuild the (derived) index deterministically after
// recovery. It mirrors sigindex.Config without importing it, keeping
// the WAL free of matcher dependencies.
type IndexConfig struct {
	MinSegments uint32
	MaxSegments uint32
	AmpBucket   float64
	DurBucket   float64
}

// ErrTorn marks a record that is incomplete or fails its checksum —
// the expected state of the final record after a crash mid-write.
// Recovery truncates the log here instead of failing.
var ErrTorn = errors.New("wal: torn or corrupt record")

// Framing and payload limits. A frame is
//
//	u32 payload length | u32 CRC-32C of payload | payload
//
// and the payload is
//
//	u8 type | uvarint lsn | type-specific fields
//
// with strings as uvarint length + bytes and float64s as little-endian
// IEEE words (the same primitives as the store binary format).
const (
	frameHeaderLen = 8
	maxPayload     = 1 << 26 // 64 MiB: far above any real record
	maxString      = 1 << 20
	maxVertices    = 1 << 24
	maxDims        = 64
	maxSubCursors  = 1 << 20
	maxSubEvents   = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodePayload serializes a record payload (without framing).
func encodePayload(rec Record) []byte {
	b := make([]byte, 0, 64+len(rec.Vertices)*24)
	b = append(b, byte(rec.Type))
	b = binary.AppendUvarint(b, rec.LSN)
	switch rec.Type {
	case TypePatientUpsert:
		b = appendString(b, rec.Patient.ID)
		b = appendString(b, rec.Patient.Class)
		b = appendString(b, rec.Patient.TumorSite)
		b = binary.AppendUvarint(b, uint64(rec.Patient.Age))
	case TypeStreamOpen:
		b = appendString(b, rec.PatientID)
		b = appendString(b, rec.SessionID)
	case TypeVertexAppend:
		b = appendString(b, rec.PatientID)
		b = appendString(b, rec.SessionID)
		b = appendVertices(b, rec.Vertices)
	case TypeSessionClose:
		b = appendString(b, rec.SessionID)
	case TypeSessionAnchor:
		b = appendString(b, rec.PatientID)
		b = appendString(b, rec.SessionID)
		b = appendAnchor(b, rec)
	case TypeReplicaSnapshot:
		b = appendString(b, rec.Patient.ID)
		b = appendString(b, rec.Patient.Class)
		b = appendString(b, rec.Patient.TumorSite)
		b = binary.AppendUvarint(b, uint64(rec.Patient.Age))
		b = appendString(b, rec.PatientID)
		b = appendString(b, rec.SessionID)
		b = appendVertices(b, rec.Vertices)
		b = appendAnchor(b, rec)
	case TypeReplicaPromote:
		b = appendString(b, rec.PatientID)
		b = appendString(b, rec.SessionID)
		b = appendAnchor(b, rec)
		b = binary.AppendUvarint(b, rec.Epoch)
	case TypeIndexConfig:
		b = binary.AppendUvarint(b, uint64(rec.Index.MinSegments))
		b = binary.AppendUvarint(b, uint64(rec.Index.MaxSegments))
		b = appendF64(b, rec.Index.AmpBucket)
		b = appendF64(b, rec.Index.DurBucket)
	case TypeSubUpsert:
		b = appendSubState(b, rec.Sub)
	case TypeSubDelete:
		b = appendString(b, rec.SubID)
	case TypeSubAck:
		b = appendString(b, rec.SubID)
		b = binary.AppendUvarint(b, rec.SubAck)
	case TypeSessionMigrate:
		b = appendString(b, rec.PatientID)
		b = appendString(b, rec.SessionID)
		b = appendString(b, rec.Target)
		b = binary.AppendUvarint(b, rec.Epoch)
		b = append(b, rec.Phase)
	}
	return b
}

// appendSubState serializes a subscription's full durable state: the
// TypeSubUpsert payload body, also reused verbatim inside snapshots.
func appendSubState(b []byte, s *SubState) []byte {
	if s == nil {
		s = &SubState{}
	}
	b = appendString(b, s.ID)
	b = appendString(b, s.PatientID)
	b = appendString(b, s.SessionID)
	b = appendF64(b, s.Threshold)
	b = binary.AppendUvarint(b, uint64(s.K))
	b = appendVertices(b, s.Pattern)
	b = binary.AppendUvarint(b, s.NextSeq)
	b = binary.AppendUvarint(b, s.Delivered)
	b = binary.AppendUvarint(b, uint64(len(s.Cursors)))
	for _, c := range s.Cursors {
		b = appendString(b, c.PatientID)
		b = appendString(b, c.SessionID)
		b = binary.AppendUvarint(b, c.Len)
	}
	b = binary.AppendUvarint(b, uint64(len(s.Events)))
	for _, e := range s.Events {
		b = binary.AppendUvarint(b, e.Seq)
		b = appendString(b, e.PatientID)
		b = appendString(b, e.SessionID)
		b = binary.AppendUvarint(b, uint64(e.Start))
		b = binary.AppendUvarint(b, uint64(e.N))
		b = append(b, e.Relation)
		b = appendF64(b, e.Distance)
		b = appendF64(b, e.Weight)
		b = appendF64(b, e.EndT)
		b = appendF64(b, e.At)
	}
	return b
}

// appendVertices serializes a PLR sequence (dims, count, vertices):
// the shared trailer of vertex-append and replica-snapshot records.
func appendVertices(b []byte, vs plr.Sequence) []byte {
	dims := vs.Dims()
	b = binary.AppendUvarint(b, uint64(dims))
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v.T)
		b = append(b, byte(v.State))
		for d := 0; d < dims; d++ {
			b = appendF64(b, v.Pos[d])
		}
	}
	return b
}

// appendAnchor serializes the raw-sample anchor triple.
func appendAnchor(b []byte, rec Record) []byte {
	b = binary.AppendUvarint(b, rec.Samples)
	b = appendF64(b, rec.AnchorT)
	b = binary.AppendUvarint(b, uint64(len(rec.AnchorPos)))
	for _, x := range rec.AnchorPos {
		b = appendF64(b, x)
	}
	return b
}

// decodePayload parses a record payload. It never panics on hostile
// input; anything malformed returns ErrTorn (possibly wrapped).
func decodePayload(b []byte) (Record, error) {
	d := decoder{b: b}
	var rec Record
	rec.Type = Type(d.u8())
	rec.LSN = d.uvarint()
	switch rec.Type {
	case TypePatientUpsert:
		rec.Patient.ID = d.str()
		rec.Patient.Class = d.str()
		rec.Patient.TumorSite = d.str()
		rec.Patient.Age = int(d.uvarint())
	case TypeStreamOpen:
		rec.PatientID = d.str()
		rec.SessionID = d.str()
	case TypeVertexAppend:
		rec.PatientID = d.str()
		rec.SessionID = d.str()
		rec.Vertices = d.vertices()
	case TypeSessionClose:
		rec.SessionID = d.str()
	case TypeSessionAnchor:
		rec.PatientID = d.str()
		rec.SessionID = d.str()
		d.anchor(&rec)
	case TypeReplicaSnapshot:
		rec.Patient.ID = d.str()
		rec.Patient.Class = d.str()
		rec.Patient.TumorSite = d.str()
		rec.Patient.Age = int(d.uvarint())
		rec.PatientID = d.str()
		rec.SessionID = d.str()
		rec.Vertices = d.vertices()
		d.anchor(&rec)
	case TypeReplicaPromote:
		rec.PatientID = d.str()
		rec.SessionID = d.str()
		d.anchor(&rec)
		rec.Epoch = d.uvarint()
	case TypeIndexConfig:
		rec.Index.MinSegments = d.u32()
		rec.Index.MaxSegments = d.u32()
		rec.Index.AmpBucket = d.f64()
		rec.Index.DurBucket = d.f64()
	case TypeSubUpsert:
		rec.Sub = d.subState()
	case TypeSubDelete:
		rec.SubID = d.str()
	case TypeSubAck:
		rec.SubID = d.str()
		rec.SubAck = d.uvarint()
	case TypeSessionMigrate:
		rec.PatientID = d.str()
		rec.SessionID = d.str()
		rec.Target = d.str()
		rec.Epoch = d.uvarint()
		rec.Phase = d.u8()
		if d.err == nil && (rec.Phase < MigratePrepare || rec.Phase > MigrateAbort) {
			return rec, fmt.Errorf("%w: invalid migration phase %d", ErrTorn, rec.Phase)
		}
	default:
		return rec, fmt.Errorf("%w: unknown record type %d", ErrTorn, rec.Type)
	}
	if d.err != nil {
		return rec, d.err
	}
	if d.off != len(d.b) {
		return rec, fmt.Errorf("%w: %d trailing bytes", ErrTorn, len(d.b)-d.off)
	}
	return rec, nil
}

// appendFrame wraps a payload with the length + CRC framing.
func appendFrame(b, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	b = append(b, hdr[:]...)
	return append(b, payload...)
}

// readFrame reads one framed payload. It returns io.EOF at a clean end
// of input and ErrTorn for a partial or checksum-failing record.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: partial frame header", ErrTorn)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrTorn, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: partial payload", ErrTorn)
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrTorn)
	}
	return payload, nil
}

// decoder is a bounds-checked cursor over a payload; the first failure
// sticks so call sites can read fields linearly and check once.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.err = fmt.Errorf("%w: short payload", ErrTorn)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad uvarint", ErrTorn)
		return 0
	}
	d.off += n
	return v
}

// u32 reads a uvarint that must fit in 32 bits (the index config
// counts); larger values could not round-trip and are torn.
func (d *decoder) u32() uint32 {
	v := d.uvarint()
	if d.err == nil && v > math.MaxUint32 {
		d.err = fmt.Errorf("%w: value %d overflows u32", ErrTorn, v)
	}
	return uint32(v)
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.err = fmt.Errorf("%w: short float", ErrTorn)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// vertices parses a serialized PLR sequence (appendVertices inverse).
func (d *decoder) vertices() plr.Sequence {
	dims := d.uvarint()
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if dims > maxDims || n > maxVertices {
		d.err = fmt.Errorf("%w: implausible vertex batch (%d x %d dims)", ErrTorn, n, dims)
		return nil
	}
	if n == 0 && dims != 0 {
		// The encoder derives dims from the sequence, so an empty batch
		// always carries dims 0; anything else cannot round-trip.
		d.err = fmt.Errorf("%w: empty vertex batch with dims %d", ErrTorn, dims)
		return nil
	}
	vs := make(plr.Sequence, 0, min(int(n), 4096))
	for i := uint64(0); i < n && d.err == nil; i++ {
		v := plr.Vertex{T: d.f64(), State: plr.State(d.u8())}
		if d.err == nil && !v.State.Valid() {
			d.err = fmt.Errorf("%w: invalid state byte", ErrTorn)
			return nil
		}
		v.Pos = make([]float64, dims)
		for j := range v.Pos {
			v.Pos[j] = d.f64()
		}
		vs = append(vs, v)
	}
	return vs
}

// subState parses a serialized subscription state (appendSubState
// inverse).
func (d *decoder) subState() *SubState {
	s := &SubState{
		ID:        d.str(),
		PatientID: d.str(),
		SessionID: d.str(),
		Threshold: d.f64(),
		K:         d.u32(),
		Pattern:   d.vertices(),
		NextSeq:   d.uvarint(),
		Delivered: d.uvarint(),
	}
	nc := d.uvarint()
	if d.err != nil {
		return nil
	}
	if nc > maxSubCursors {
		d.err = fmt.Errorf("%w: implausible cursor count %d", ErrTorn, nc)
		return nil
	}
	s.Cursors = make([]SubCursor, 0, min(int(nc), 4096))
	for i := uint64(0); i < nc && d.err == nil; i++ {
		s.Cursors = append(s.Cursors, SubCursor{
			PatientID: d.str(),
			SessionID: d.str(),
			Len:       d.uvarint(),
		})
	}
	ne := d.uvarint()
	if d.err != nil {
		return nil
	}
	if ne > maxSubEvents {
		d.err = fmt.Errorf("%w: implausible event count %d", ErrTorn, ne)
		return nil
	}
	s.Events = make([]SubEvent, 0, min(int(ne), 4096))
	for i := uint64(0); i < ne && d.err == nil; i++ {
		s.Events = append(s.Events, SubEvent{
			Seq:       d.uvarint(),
			PatientID: d.str(),
			SessionID: d.str(),
			Start:     d.u32(),
			N:         d.u32(),
			Relation:  d.u8(),
			Distance:  d.f64(),
			Weight:    d.f64(),
			EndT:      d.f64(),
			At:        d.f64(),
		})
	}
	if d.err != nil {
		return nil
	}
	return s
}

// anchor parses the raw-sample anchor triple (appendAnchor inverse).
func (d *decoder) anchor(rec *Record) {
	rec.Samples = d.uvarint()
	rec.AnchorT = d.f64()
	dims := d.uvarint()
	if d.err != nil {
		return
	}
	if dims > maxDims {
		d.err = fmt.Errorf("%w: implausible anchor dims %d", ErrTorn, dims)
		return
	}
	rec.AnchorPos = make([]float64, dims)
	for i := range rec.AnchorPos {
		rec.AnchorPos[i] = d.f64()
	}
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxString || d.off+int(n) > len(d.b) {
		d.err = fmt.Errorf("%w: bad string length %d", ErrTorn, n)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
