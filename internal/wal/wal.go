// Package wal implements the durability subsystem for the stream
// database: an append-only, CRC-checksummed, versioned write-ahead log
// of store mutations with segment rotation, periodic compaction into
// binary snapshots (the snapshot payload is the store's own binary
// format), and a recovery path that loads the latest valid snapshot
// and replays the WAL tail, truncating at the first torn record.
//
// Layout of a data directory:
//
//	wal-<firstLSN hex>.log   log segments ("STWL" u16 version u64 firstLSN,
//	                         then framed records)
//	snap-<LSN hex>.db        snapshots ("STSS" u16 version u64 LSN,
//	                         open-session manifest, store binary payload)
//
// Records are framed as u32 payload length | u32 CRC-32C | payload and
// carry their LSN; recovery verifies both the checksum and LSN
// contiguity. Appends are buffered and made durable by a group-commit
// flusher every Options.FsyncInterval (0 = synchronous fsync per
// append), so a crash loses at most one interval of acknowledged
// writes.
package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stsmatch/internal/obs"
)

const (
	segMagic   = "STWL"
	segVersion = 1
	segHdrLen  = 4 + 2 + 8

	defaultSegmentMaxBytes = 64 << 20
	defaultKeepSnapshots   = 2
)

// Options configures a Log.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string

	// FsyncInterval is the group-commit interval: buffered records are
	// flushed and fsynced together every interval. Zero means every
	// Append flushes and fsyncs before returning (maximum durability,
	// minimum throughput).
	FsyncInterval time.Duration

	// SegmentMaxBytes rotates the active segment once it exceeds this
	// size. Zero uses the 64 MiB default.
	SegmentMaxBytes int64

	// KeepSnapshots is how many snapshots survive compaction (the
	// newest ones). Zero uses the default of 2: one to recover from
	// plus one fallback if the newest is itself torn.
	KeepSnapshots int

	// Collector, when set, receives trace data for slow group commits:
	// a flush (buffer write + fsync) at or above the collector's slow
	// threshold is recorded as a standalone single-span trace, so
	// ingest-ack stalls caused by the background flusher are visible in
	// /v1/traces even though the flusher has no request context.
	Collector *obs.Collector
}

func (o Options) withDefaults() Options {
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = defaultSegmentMaxBytes
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = defaultKeepSnapshots
	}
	return o
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use. I/O errors are sticky: once an append or flush fails, the log
// refuses further writes with the same error (the caller decides
// whether to keep serving without durability).
type Log struct {
	opts Options

	// idxConf is the window-signature index configuration stamped into
	// every snapshot (nil = no index). Open seeds it from recovery;
	// SetIndexConfig updates it when the owner enables the index.
	idxConf atomic.Pointer[IndexConfig]

	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	segFirst uint64 // first LSN of the active segment
	size     int64  // bytes written to the active segment
	nextLSN  uint64
	dirty    bool
	err      error
	closed   bool

	stop chan struct{}
	done chan struct{}
}

// SetIndexConfig records the index configuration future snapshots must
// embed (nil clears it). Callers journal a TypeIndexConfig record
// alongside, so the config survives both replay and compaction.
func (l *Log) SetIndexConfig(c *IndexConfig) {
	if c == nil {
		l.idxConf.Store(nil)
		return
	}
	cp := *c
	l.idxConf.Store(&cp)
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Err returns the sticky I/O error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Append assigns the next LSN to rec and writes it to the active
// segment. The record is buffered; it becomes durable at the next
// group commit (or immediately when FsyncInterval is zero).
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	if l.err != nil {
		return l.err
	}
	rec.LSN = l.nextLSN
	frame := appendFrame(nil, encodePayload(rec))
	if _, err := l.w.Write(frame); err != nil {
		l.fail(err)
		return l.err
	}
	l.nextLSN++
	l.size += int64(len(frame))
	l.dirty = true
	met.records.Inc()
	met.bytes.Add(len(frame))
	met.activeBytes.Set(l.size)
	if l.opts.FsyncInterval == 0 {
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	if l.size >= l.opts.SegmentMaxBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// AppendCtx is Append with trace-context support: when ctx carries a
// span (obs.StartSpan), the append is recorded as a "wal.append" child
// span, annotated with whether it flushed synchronously (FsyncInterval
// zero) — the attribution for ingest acks stalled on per-append fsync.
func (l *Log) AppendCtx(ctx context.Context, rec Record) error {
	_, sp := obs.StartSpan(ctx, "wal.append")
	if sp == nil {
		return l.Append(rec)
	}
	defer sp.Finish()
	sp.Annotate("type", rec.Type.String())
	sp.Annotate("synced", l.opts.FsyncInterval == 0)
	err := l.Append(rec)
	if err != nil {
		sp.Annotate("error", err.Error())
	}
	return err
}

// Sync forces buffered records to durable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// SyncCtx is Sync with trace-context support: a traced caller (e.g. a
// session close or promotion that must be durable before its ack)
// records the flush as a "wal.sync" child span.
func (l *Log) SyncCtx(ctx context.Context) error {
	_, sp := obs.StartSpan(ctx, "wal.sync")
	if sp == nil {
		return l.Sync()
	}
	defer sp.Finish()
	err := l.Sync()
	if err != nil {
		sp.Annotate("error", err.Error())
	}
	return err
}

// flushLocked writes the buffer to the file and fsyncs it.
func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.w.Flush(); err != nil {
		l.fail(err)
		return l.err
	}
	syncStart := time.Now()
	if err := l.f.Sync(); err != nil {
		l.fail(err)
		return l.err
	}
	now := time.Now()
	met.fsyncs.Inc()
	met.fsyncSeconds.Observe(now.Sub(syncStart).Seconds())
	met.groupCommitSeconds.Observe(now.Sub(start).Seconds())
	// A slow group commit is the classic silent ingest-ack stall; the
	// collector keeps it (slow ring only — a healthy flush cadence must
	// not crowd out request traces).
	obs.RecordStandalone(l.opts.Collector, "wal", "wal.group_commit", start, now.Sub(start), map[string]any{
		"fsyncMs":      float64(now.Sub(syncStart)) / float64(time.Millisecond),
		"segmentBytes": l.size,
	})
	l.dirty = false
	return nil
}

// rotateLocked seals the active segment and opens a fresh one whose
// first LSN is nextLSN.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.fail(err)
		return l.err
	}
	if err := l.openSegmentLocked(l.nextLSN); err != nil {
		return err
	}
	met.rotations.Inc()
	return nil
}

// openSegmentLocked creates segment wal-<firstLSN>.log and writes its
// header.
func (l *Log) openSegmentLocked(firstLSN uint64) error {
	path := filepath.Join(l.opts.Dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		l.fail(err)
		return l.err
	}
	var hdr [segHdrLen]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], segVersion)
	binary.LittleEndian.PutUint64(hdr[6:], firstLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		l.fail(err)
		return l.err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.fail(err)
		return l.err
	}
	syncDir(l.opts.Dir)
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.segFirst = firstLSN
	l.size = segHdrLen
	l.dirty = false
	met.activeBytes.Set(l.size)
	return nil
}

// resumeSegmentLocked reopens an existing segment for appending at
// offset end (the end of its last valid record).
func (l *Log) resumeSegmentLocked(firstLSN uint64, end int64) error {
	path := filepath.Join(l.opts.Dir, segmentName(firstLSN))
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		l.fail(err)
		return l.err
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		l.fail(err)
		return l.err
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.segFirst = firstLSN
	l.size = end
	l.dirty = false
	met.activeBytes.Set(l.size)
	return nil
}

// fail records a sticky I/O error.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
		met.appendErrors.Inc()
	}
}

// Close flushes and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	flushErr := l.flushLocked()
	if l.f != nil {
		if err := l.f.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
		l.f = nil
	}
	return flushErr
}

// flusher is the group-commit loop.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.Sync() //nolint:errcheck // sticky error surfaces on the next Append
		}
	}
}

// segmentName formats the file name of the segment starting at lsn.
func segmentName(lsn uint64) string { return fmt.Sprintf("wal-%016x.log", lsn) }

// snapshotName formats the file name of the snapshot taken at lsn.
func snapshotName(lsn uint64) string { return fmt.Sprintf("snap-%016x.db", lsn) }

// parseSeqName extracts the LSN from a segment or snapshot file name.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSeq returns the LSNs of all files matching prefix/suffix in dir,
// ascending.
func listSeq(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if v, ok := parseSeqName(e.Name(), prefix, suffix); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// syncDir fsyncs a directory so renames and creates survive a crash.
// Best effort: some platforms/filesystems reject directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}
