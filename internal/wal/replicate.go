// Replication wire format: a primary ships its per-session WAL
// records to replicas as batches over POST /v1/replicate. A batch
// reuses the log's record encoding and CRC-32C framing verbatim, so a
// replica validates the stream with the same machinery recovery uses,
// and the record's LSN slot carries the per-session replication
// sequence number (1-based, dense, assigned by the primary).
//
// Batch layout:
//
//	"STRB" u16 version
//	str source | str sessionID | str patientID   (uvarint len + bytes)
//	uvarint epoch | uvarint firstSeq | uvarint count
//	count x (u32 payload len | u32 CRC-32C | record payload)
//
// Gap safety: records inside a batch must be seq-contiguous (enforced
// at decode), and a Cursor refuses any batch that would skip past its
// next expected sequence — out-of-order records are never applied.
// A TypeReplicaSnapshot record carries the session's complete state
// and (re)establishes the cursor wherever the primary says, which is
// the catch-up path after a gap and the first record a freshly
// promoted primary sends. Epochs fence deposed primaries: a batch
// with an epoch below the cursor's is rejected outright.

package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	batchMagic   = "STRB"
	batchVersion = 1

	// maxBatchRecords bounds a single replication batch; primaries ship
	// per-ingest-call batches that are far smaller.
	maxBatchRecords = 1 << 16
)

// Batch is one replication shipment for a single session.
type Batch struct {
	// Source is the shipping primary's advertised base URL (matched
	// against the follower's accept-list when one is configured).
	Source string
	// SessionID / PatientID identify the replicated session.
	SessionID string
	PatientID string
	// Epoch is the primary's fencing term; promotions increment it.
	Epoch uint64
	// FirstSeq is the sequence number of Records[0]; records are dense,
	// so Records[i] has sequence FirstSeq+i (carried in the LSN slot).
	FirstSeq uint64
	// Records are the shipped records in sequence order.
	Records []Record
}

// EncodeBatch serializes a batch. Records' LSN fields are overwritten
// with FirstSeq+i so the wire sequence is dense by construction.
func EncodeBatch(b Batch) []byte {
	out := make([]byte, 0, 64+len(b.Records)*64)
	out = append(out, batchMagic...)
	out = binary.LittleEndian.AppendUint16(out, batchVersion)
	out = appendString(out, b.Source)
	out = appendString(out, b.SessionID)
	out = appendString(out, b.PatientID)
	out = binary.AppendUvarint(out, b.Epoch)
	out = binary.AppendUvarint(out, b.FirstSeq)
	out = binary.AppendUvarint(out, uint64(len(b.Records)))
	for i, rec := range b.Records {
		rec.LSN = b.FirstSeq + uint64(i)
		out = appendFrame(out, encodePayload(rec))
	}
	return out
}

// DecodeBatch parses and validates a batch: magic, version, CRC of
// every record frame, and sequence density (record i must carry
// sequence FirstSeq+i). Anything malformed returns an error wrapping
// ErrTorn; a valid batch can be handed to Cursor.Accept.
func DecodeBatch(data []byte) (Batch, error) {
	var b Batch
	r := bytes.NewReader(data)
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return b, fmt.Errorf("%w: short batch header", ErrTorn)
	}
	if string(hdr[:4]) != batchMagic {
		return b, fmt.Errorf("%w: bad batch magic %q", ErrTorn, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != batchVersion {
		return b, fmt.Errorf("%w: unsupported batch version %d", ErrTorn, v)
	}
	var err error
	if b.Source, err = readBatchString(r); err != nil {
		return b, err
	}
	if b.SessionID, err = readBatchString(r); err != nil {
		return b, err
	}
	if b.PatientID, err = readBatchString(r); err != nil {
		return b, err
	}
	if b.Epoch, err = readBatchUvarint(r); err != nil {
		return b, err
	}
	if b.FirstSeq, err = readBatchUvarint(r); err != nil {
		return b, err
	}
	n, err := readBatchUvarint(r)
	if err != nil {
		return b, err
	}
	if n > maxBatchRecords {
		return b, fmt.Errorf("%w: implausible batch of %d records", ErrTorn, n)
	}
	b.Records = make([]Record, 0, min(int(n), 4096))
	for i := uint64(0); i < n; i++ {
		payload, err := readFrame(r)
		if err != nil {
			return b, fmt.Errorf("%w: record %d: %v", ErrTorn, i, err)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return b, fmt.Errorf("%w: record %d: %v", ErrTorn, i, err)
		}
		if rec.LSN != b.FirstSeq+i {
			return b, fmt.Errorf("%w: record %d carries seq %d, want %d (batch not dense)",
				ErrTorn, i, rec.LSN, b.FirstSeq+i)
		}
		b.Records = append(b.Records, rec)
	}
	if r.Len() != 0 {
		return b, fmt.Errorf("%w: %d trailing bytes after batch", ErrTorn, r.Len())
	}
	return b, nil
}

func readBatchString(r *bytes.Reader) (string, error) {
	n, err := readBatchUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxString || n > uint64(r.Len()) {
		return "", fmt.Errorf("%w: bad batch string length %d", ErrTorn, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: short batch string", ErrTorn)
	}
	return string(buf), nil
}

func readBatchUvarint(r *bytes.Reader) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: bad batch uvarint", ErrTorn)
	}
	return v, nil
}

// ErrGap reports a batch whose sequence range does not connect to the
// cursor: applying it would skip records. The follower answers 409 and
// the primary falls back to snapshot catch-up.
var ErrGap = errors.New("wal: replication sequence gap")

// ErrStaleEpoch reports a batch from a deposed primary (its epoch is
// below the cursor's). Nothing from it may be applied.
var ErrStaleEpoch = errors.New("wal: stale replication epoch")

// Cursor is a follower's per-session replication position: the next
// expected sequence number and the highest epoch accepted so far. The
// zero value accepts a stream that starts at sequence 1 (or any
// snapshot). Cursor is not safe for concurrent use; the server
// serializes Accept per session.
type Cursor struct {
	Next  uint64 // next expected sequence (0 and 1 both mean "at start")
	Epoch uint64 // highest epoch seen
}

// Accept validates a batch against the cursor and returns the records
// to apply, in order: duplicates below the cursor are dropped, a
// snapshot record resets the cursor to its own sequence, and any batch
// that would leave a hole fails with ErrGap (out-of-order records are
// never returned). Sequence numbers are derived from FirstSeq (batches
// are dense by construction), and each returned record's LSN is set to
// its sequence. On error the cursor is unchanged; on success it
// advances past the batch.
func (c *Cursor) Accept(b Batch) ([]Record, error) {
	if b.Epoch < c.Epoch {
		return nil, fmt.Errorf("%w: batch epoch %d < current %d", ErrStaleEpoch, b.Epoch, c.Epoch)
	}
	next := c.Next
	if next == 0 {
		next = 1
	}
	// A higher epoch means a new primary whose sequence numbering has no
	// relation to ours: only a snapshot can re-establish position. A
	// cursor that has never accepted anything (Next == 0) has no position
	// to lose, so it takes the stream at whatever epoch it starts at.
	synced := b.Epoch == c.Epoch || c.Next == 0
	apply := make([]Record, 0, len(b.Records))
	for i, rec := range b.Records {
		rec.LSN = b.FirstSeq + uint64(i)
		if rec.Type == TypeReplicaSnapshot {
			next = rec.LSN + 1
			synced = true
			apply = append(apply, rec)
			continue
		}
		if !synced {
			return nil, fmt.Errorf("%w: epoch advanced to %d without a snapshot", ErrGap, b.Epoch)
		}
		switch {
		case rec.LSN < next: // duplicate of an already-applied record
		case rec.LSN > next:
			return nil, fmt.Errorf("%w: next expected %d, batch offers %d", ErrGap, next, rec.LSN)
		default:
			apply = append(apply, rec)
			next++
		}
	}
	if !synced {
		// An empty batch from a new epoch carries no snapshot to anchor
		// the new primary's numbering; force catch-up instead.
		return nil, fmt.Errorf("%w: epoch advanced to %d without a snapshot", ErrGap, b.Epoch)
	}
	c.Next = next
	c.Epoch = b.Epoch
	return apply, nil
}
