package wal

import "stsmatch/internal/obs"

// met bundles the WAL's handles into the shared default registry,
// following the same pattern as the store and fsm instrumentation.
var met = struct {
	records            *obs.Counter
	bytes              *obs.Counter
	fsyncs             *obs.Counter
	appendErrors       *obs.Counter
	rotations          *obs.Counter
	snapshots          *obs.Counter
	activeBytes        *obs.Gauge
	fsyncSeconds       *obs.Histogram
	groupCommitSeconds *obs.Histogram
	snapshotSeconds    *obs.Histogram
	recoverySeconds    *obs.Histogram
	replayedRecords    *obs.Gauge
	truncatedRecords   *obs.Gauge
}{
	records: obs.Default().Counter("stsmatch_wal_records_total",
		"Records appended to the write-ahead log."),
	bytes: obs.Default().Counter("stsmatch_wal_bytes_total",
		"Bytes appended to the write-ahead log (framing included)."),
	fsyncs: obs.Default().Counter("stsmatch_wal_fsyncs_total",
		"Group-commit fsync calls on the active WAL segment."),
	appendErrors: obs.Default().Counter("stsmatch_wal_append_errors_total",
		"WAL writes that failed with a (sticky) I/O error."),
	rotations: obs.Default().Counter("stsmatch_wal_segment_rotations_total",
		"WAL segment rotations."),
	snapshots: obs.Default().Counter("stsmatch_wal_snapshots_total",
		"Snapshots written."),
	activeBytes: obs.Default().Gauge("stsmatch_wal_active_segment_bytes",
		"Size of the active WAL segment."),
	fsyncSeconds: obs.Default().Histogram("stsmatch_wal_fsync_seconds",
		"Duration of WAL fsync calls.", obs.DefLatencyBuckets),
	groupCommitSeconds: obs.Default().Histogram("stsmatch_wal_group_commit_seconds",
		"Duration of a full group commit (buffer flush plus fsync).",
		obs.DefLatencyBuckets),
	snapshotSeconds: obs.Default().Histogram("stsmatch_wal_snapshot_seconds",
		"Duration of snapshot writes (serialize, fsync, rename, compact).",
		obs.DefLatencyBuckets),
	recoverySeconds: obs.Default().Histogram("stsmatch_wal_recovery_seconds",
		"Duration of crash recovery (snapshot load plus WAL replay).",
		obs.DefLatencyBuckets),
	replayedRecords: obs.Default().Gauge("stsmatch_wal_recovery_replayed_records",
		"WAL records replayed during the most recent recovery."),
	truncatedRecords: obs.Default().Gauge("stsmatch_wal_recovery_truncated_records",
		"Torn/corrupt WAL records truncated during the most recent recovery."),
}
