package wal

import (
	"context"
	"testing"
	"time"

	"stsmatch/internal/obs"
)

// TestAppendCtxEmitsSpans verifies the traced append/sync paths attach
// wal.append / wal.sync child spans to the caller's trace, and that
// untraced contexts take the plain path untouched.
func TestAppendCtxEmitsSpans(t *testing.T) {
	l, _, err := Open(Options{Dir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	col := obs.NewCollector(4, time.Hour)
	root := obs.StartTrace("ingest", "test", obs.SpanContext{}, col)
	ctx := obs.ContextWithSpan(context.Background(), root)

	verts := mkVerts(0, 2)
	rec := Record{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: verts}
	if err := l.AppendCtx(ctx, rec); err != nil {
		t.Fatal(err)
	}
	if err := l.SyncCtx(ctx); err != nil {
		t.Fatal(err)
	}
	// Untraced contexts must not panic or record anywhere.
	if err := l.AppendCtx(context.Background(), rec); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	recent := col.Recent()
	if len(recent) != 1 {
		t.Fatalf("collector holds %d traces, want 1", len(recent))
	}
	got := map[string]obs.SpanData{}
	for _, sd := range recent[0].Spans {
		got[sd.Name] = sd
	}
	app, ok := got["wal.append"]
	if !ok {
		t.Fatalf("no wal.append span: %+v", recent[0].Spans)
	}
	if tp, _ := app.Attrs["type"].(string); tp != TypeVertexAppend.String() {
		t.Errorf("wal.append type attr %q", tp)
	}
	if synced, _ := app.Attrs["synced"].(bool); !synced {
		t.Error("FsyncInterval=0 append not marked synced")
	}
	if _, ok := got["wal.sync"]; !ok {
		t.Fatalf("no wal.sync span: %+v", recent[0].Spans)
	}
}

// TestSlowGroupCommitCaptured verifies that flushes meeting the slow
// threshold are pinned as standalone traces in the collector's slow
// ring (and only there: background flush cadence must not crowd the
// recent request ring).
func TestSlowGroupCommitCaptured(t *testing.T) {
	col := obs.NewCollector(4, 1) // 1ns threshold: every flush is "slow"
	l, _, err := Open(Options{Dir: t.TempDir(), Collector: col}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 2)}); err != nil {
		t.Fatal(err)
	}
	if got := col.Recent(); len(got) != 0 {
		t.Fatalf("group commits leaked into the recent ring: %d", len(got))
	}
	slow := col.Slow()
	if len(slow) == 0 {
		t.Fatal("no slow group-commit trace captured")
	}
	td := slow[0]
	if td.Root != "wal.group_commit" || td.Service != "wal" || len(td.Spans) != 1 {
		t.Fatalf("slow trace %+v, want single-span wal.group_commit", td)
	}
	if _, ok := td.Spans[0].Attrs["fsyncMs"]; !ok {
		t.Errorf("group-commit span lacks fsyncMs attr: %+v", td.Spans[0].Attrs)
	}
}
