package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"stsmatch/internal/store"
)

// FuzzWALDecode hammers the record decoder with arbitrary bytes
// (mirroring store's FuzzReadBinary): it must never panic or
// over-allocate, must cleanly report torn/corrupt input, and anything
// that decodes must re-encode to an identical payload.
func FuzzWALDecode(f *testing.F) {
	// Seed with a valid frame stream of every record type plus
	// structured mutations of it.
	var stream []byte
	for _, rec := range []Record{
		{Type: TypePatientUpsert, LSN: 1, Patient: store.PatientInfo{ID: "P1", Class: "calm", Age: 50}},
		{Type: TypeStreamOpen, LSN: 2, PatientID: "P1", SessionID: "S1"},
		{Type: TypeVertexAppend, LSN: 3, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 4)},
		{Type: TypeSessionAnchor, LSN: 4, PatientID: "P1", SessionID: "S1", Samples: 120, AnchorT: 4.2, AnchorPos: []float64{7}},
		{Type: TypeSessionClose, LSN: 5, SessionID: "S1"},
	} {
		stream = appendFrame(stream, encodePayload(rec))
	}
	f.Add(stream)
	f.Add(stream[:len(stream)/2])
	f.Add(stream[1:])
	f.Add([]byte{})
	f.Add([]byte{3, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame reader must classify every prefix as a valid
		// record, a clean EOF, or a torn record — nothing else.
		r := bytes.NewReader(data)
		for {
			payload, err := readFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTorn) {
					t.Fatalf("readFrame: unexpected error class: %v", err)
				}
				break
			}
			rec, err := decodePayload(payload)
			if err != nil {
				if !errors.Is(err, ErrTorn) {
					t.Fatalf("decodePayload: unexpected error class: %v", err)
				}
				continue
			}
			// Valid records round-trip bit-for-bit.
			if got := encodePayload(rec); !bytes.Equal(got, payload) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, payload)
			}
		}

		// The payload decoder must also survive raw (unframed) bytes.
		if rec, err := decodePayload(data); err == nil {
			if _, err := decodePayload(encodePayload(rec)); err != nil {
				t.Fatalf("re-decode of valid record failed: %v", err)
			}
		} else if !errors.Is(err, ErrTorn) {
			t.Fatalf("decodePayload: unexpected error class: %v", err)
		}
	})
}
