package wal

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"stsmatch/internal/store"
)

// FuzzWALDecode hammers the record decoder with arbitrary bytes
// (mirroring store's FuzzReadBinary): it must never panic or
// over-allocate, must cleanly report torn/corrupt input, and anything
// that decodes must re-encode to an identical payload.
func FuzzWALDecode(f *testing.F) {
	// Seed with a valid frame stream of every record type plus
	// structured mutations of it.
	var stream []byte
	for _, rec := range []Record{
		{Type: TypePatientUpsert, LSN: 1, Patient: store.PatientInfo{ID: "P1", Class: "calm", Age: 50}},
		{Type: TypeStreamOpen, LSN: 2, PatientID: "P1", SessionID: "S1"},
		{Type: TypeVertexAppend, LSN: 3, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 4)},
		{Type: TypeSessionAnchor, LSN: 4, PatientID: "P1", SessionID: "S1", Samples: 120, AnchorT: 4.2, AnchorPos: []float64{7}},
		{Type: TypeSessionClose, LSN: 5, SessionID: "S1"},
		{Type: TypeReplicaSnapshot, LSN: 6, Patient: store.PatientInfo{ID: "P1", Class: "calm", Age: 50},
			PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 3), Samples: 90, AnchorT: 3.1, AnchorPos: []float64{5}},
		{Type: TypeReplicaPromote, LSN: 7, PatientID: "P1", SessionID: "S1", Samples: 90, AnchorT: 3.1, AnchorPos: []float64{5}, Epoch: 2},
		{Type: TypeIndexConfig, LSN: 8, Index: IndexConfig{MinSegments: 9, MaxSegments: 24, AmpBucket: 4, DurBucket: 4}},
		{Type: TypeSubUpsert, LSN: 9, Sub: &SubState{
			ID: "sub-1", PatientID: "P1", SessionID: "S1", Threshold: 2.5, K: 3,
			Pattern: mkVerts(0, 3), NextSeq: 4, Delivered: 2,
			Cursors: []SubCursor{{PatientID: "P1", SessionID: "S1", Len: 7}},
			Events: []SubEvent{{Seq: 1, PatientID: "P1", SessionID: "S1", Start: 2, N: 3,
				Relation: 1, Distance: 0.5, Weight: 0.4, EndT: 9.5, At: 100}},
		}},
		{Type: TypeSubDelete, LSN: 10, SubID: "sub-1"},
		{Type: TypeSubAck, LSN: 11, SubID: "sub-1", SubAck: 42},
		{Type: TypeSessionMigrate, LSN: 12, PatientID: "P1", SessionID: "S1",
			Target: "http://b", Epoch: 3, Phase: MigratePrepare},
	} {
		stream = appendFrame(stream, encodePayload(rec))
	}
	f.Add(stream)
	f.Add(stream[:len(stream)/2])
	f.Add(stream[1:])
	f.Add([]byte{})
	f.Add([]byte{3, 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The frame reader must classify every prefix as a valid
		// record, a clean EOF, or a torn record — nothing else.
		r := bytes.NewReader(data)
		for {
			payload, err := readFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrTorn) {
					t.Fatalf("readFrame: unexpected error class: %v", err)
				}
				break
			}
			rec, err := decodePayload(payload)
			if err != nil {
				if !errors.Is(err, ErrTorn) {
					t.Fatalf("decodePayload: unexpected error class: %v", err)
				}
				continue
			}
			// Valid records round-trip bit-for-bit.
			if got := encodePayload(rec); !bytes.Equal(got, payload) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", got, payload)
			}
		}

		// The payload decoder must also survive raw (unframed) bytes.
		if rec, err := decodePayload(data); err == nil {
			if _, err := decodePayload(encodePayload(rec)); err != nil {
				t.Fatalf("re-decode of valid record failed: %v", err)
			}
		} else if !errors.Is(err, ErrTorn) {
			t.Fatalf("decodePayload: unexpected error class: %v", err)
		}
	})
}

// FuzzReplicationBatch hammers the replication batch decoder and the
// follower cursor: malformed batches must fail cleanly as ErrTorn,
// valid ones must round-trip through the canonical encoding (the
// encoder is a fixed point — batch header varints are not
// CRC-protected, so a crafted non-minimal varint may decode but must
// canonicalize on re-encode), and no sequence of Accept calls may
// ever apply records out of order or leave a hole — the core
// gap-detection safety property.
func FuzzReplicationBatch(f *testing.F) {
	snap := Record{Type: TypeReplicaSnapshot, Patient: store.PatientInfo{ID: "P1"},
		PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 2), Samples: 30, AnchorT: 1.0}
	vtx := Record{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(2, 2)}
	base := Batch{Source: "http://a", SessionID: "S1", PatientID: "P1", Epoch: 1, FirstSeq: 1,
		Records: []Record{vtx, vtx}}
	f.Add(EncodeBatch(base), uint64(0), uint64(0))
	f.Add(EncodeBatch(Batch{SessionID: "S1", Epoch: 2, FirstSeq: 5, Records: []Record{snap, vtx}}), uint64(3), uint64(1))
	f.Add(EncodeBatch(Batch{SessionID: "S1", Epoch: 1, FirstSeq: 9, Records: []Record{vtx}}), uint64(3), uint64(1))
	f.Add([]byte("STRB"), uint64(0), uint64(0))
	f.Add([]byte{}, uint64(7), uint64(2))

	f.Fuzz(func(t *testing.T, data []byte, next, epoch uint64) {
		b, err := DecodeBatch(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) {
				t.Fatalf("DecodeBatch: unexpected error class: %v", err)
			}
			return
		}
		enc := EncodeBatch(b)
		b2, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode of valid batch failed: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("batch changed across canonical round-trip:\n got %+v\nwant %+v", b2, b)
		}
		if again := EncodeBatch(b2); !bytes.Equal(again, enc) {
			t.Fatalf("encoder is not a fixed point:\n got %x\nwant %x", again, enc)
		}

		c := Cursor{Next: next % 64, Epoch: epoch % 8}
		before := c
		apply, err := c.Accept(b)
		if err != nil {
			if !errors.Is(err, ErrGap) && !errors.Is(err, ErrStaleEpoch) {
				t.Fatalf("Accept: unexpected error class: %v", err)
			}
			if c != before {
				t.Fatalf("cursor mutated on rejected batch: %+v -> %+v", before, c)
			}
			return
		}
		// Applied records must be strictly increasing, contiguous after
		// each anchor point, and never behind the pre-batch cursor
		// except where a snapshot explicitly re-anchored it.
		want := before.Next
		if want == 0 {
			want = 1
		}
		for i, rec := range apply {
			if rec.Type == TypeReplicaSnapshot {
				want = rec.LSN + 1
				continue
			}
			if rec.LSN != want {
				t.Fatalf("applied record %d has seq %d, want %d (out of order)", i, rec.LSN, want)
			}
			want++
		}
		if c.Next != want {
			t.Fatalf("cursor advanced to %d, want %d", c.Next, want)
		}
		if c.Epoch != b.Epoch {
			t.Fatalf("cursor epoch %d after accepting epoch %d", c.Epoch, b.Epoch)
		}
	})
}
