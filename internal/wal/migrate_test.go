package wal

import (
	"reflect"
	"testing"

	"stsmatch/internal/store"
)

func openSessions(res *RecoveryResult) map[string]bool {
	open := make(map[string]bool, len(res.Sessions))
	for _, ss := range res.Sessions {
		open[ss.SessionID] = true
	}
	return open
}

// TestMigrationReplay: TypeSessionMigrate records replay into exactly
// the surviving migration states — a commit leaves a tombstone and
// closes the session, an abort erases the prepare, a bare prepare
// survives with its session still open (it resumes fenced), and a
// later TypeReplicaPromote sheds a committed tombstone because the
// session migrated back.
func TestMigrationReplay(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendSession(t, l, "P1", "S1", mkVerts(0, 8))
	appendSession(t, l, "P2", "S2", mkVerts(0, 8))
	appendSession(t, l, "P3", "S3", mkVerts(0, 8))
	mig := func(sid, pid, target string, epoch uint64, phase uint8) {
		t.Helper()
		if err := l.Append(Record{Type: TypeSessionMigrate,
			PatientID: pid, SessionID: sid, Target: target, Epoch: epoch, Phase: phase}); err != nil {
			t.Fatal(err)
		}
	}
	// S1 migrates away; S2's cutover fails and rolls back; S3 goes
	// down mid-cutover with only the prepare on disk.
	mig("S1", "P1", "http://b", 0, MigratePrepare)
	mig("S1", "P1", "http://b", 7, MigrateCommit)
	mig("S2", "P2", "http://c", 0, MigratePrepare)
	mig("S2", "P2", "http://c", 0, MigrateAbort)
	mig("S3", "P3", "http://b", 0, MigratePrepare)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []MigrationState{
		{SessionID: "S1", PatientID: "P1", Target: "http://b", Epoch: 7, Phase: MigrateCommit},
		{SessionID: "S3", PatientID: "P3", Target: "http://b", Phase: MigratePrepare},
	}
	if !reflect.DeepEqual(res.Migrations, want) {
		t.Fatalf("migrations after replay:\n got %+v\nwant %+v", res.Migrations, want)
	}
	open := openSessions(res)
	if open["S1"] {
		t.Error("committed-away session S1 still open after replay")
	}
	if !open["S2"] || !open["S3"] {
		t.Errorf("sessions S2 (aborted) and S3 (prepared) must stay open, got %v", open)
	}

	// S1 migrates back: the promote both reopens the session and sheds
	// the tombstone, so stale-route 410s stop once this node owns it.
	if err := l.Append(Record{Type: TypeReplicaPromote, PatientID: "P1", SessionID: "S1",
		Samples: 240, AnchorT: 7.4, AnchorPos: []float64{3.6}, Epoch: 9}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, res, err = Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Migrations, want[1:]) {
		t.Fatalf("migrations after migrate-back:\n got %+v\nwant %+v", res.Migrations, want[1:])
	}
	if !openSessions(res)["S1"] {
		t.Error("migrated-back session S1 not reopened by promote replay")
	}
}

// TestSnapshotCarriesMigrations: the snapshot's migration section
// round-trips tombstones and in-flight prepares through compaction,
// and WAL-tail records replay on top of the snapshot-seeded state.
func TestSnapshotCarriesMigrations(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := store.NewDB()
	p, err := db.AddPatient(store.PatientInfo{ID: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddStream("S1").Append(mkVerts(0, 8)...); err != nil {
		t.Fatal(err)
	}
	want := []MigrationState{
		{SessionID: "S1", PatientID: "P1", Target: "http://b", Phase: MigratePrepare},
		{SessionID: "S9", PatientID: "P9", Target: "http://c", Epoch: 4, Phase: MigrateCommit},
	}
	sessions := []SessionState{{PatientID: "P1", SessionID: "S1", Samples: 240, LastT: 7.4, LastPos: []float64{3.6}}}
	if _, err := l.Snapshot(db, sessions, nil, want...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Migrations, want) {
		t.Fatalf("migrations from snapshot:\n got %+v\nwant %+v", res.Migrations, want)
	}

	// The tail replays over the snapshot-seeded state: the abort
	// erases the in-flight prepare, the tombstone stays.
	if err := l.Append(Record{Type: TypeSessionMigrate,
		PatientID: "P1", SessionID: "S1", Target: "http://b", Phase: MigrateAbort}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, res, err = Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Migrations, want[1:]) {
		t.Fatalf("migrations after tail abort:\n got %+v\nwant %+v", res.Migrations, want[1:])
	}
}
