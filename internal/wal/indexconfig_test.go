package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"stsmatch/internal/store"
)

func testIndexConfig() IndexConfig {
	return IndexConfig{MinSegments: 9, MaxSegments: 24, AmpBucket: 4, DurBucket: 2.5}
}

func TestIndexConfigRecordRoundTrip(t *testing.T) {
	rec := Record{Type: TypeIndexConfig, LSN: 42, Index: testIndexConfig()}
	got, err := decodePayload(encodePayload(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeIndexConfig || got.LSN != 42 || got.Index != rec.Index {
		t.Fatalf("round trip changed record: %+v -> %+v", rec, got)
	}
	if got.Type.String() != "index-config" {
		t.Errorf("Type.String() = %q", got.Type.String())
	}
}

// TestIndexConfigRecovered: an index-config record journaled before a
// crash comes back through RecoveryResult.IndexConfig, and the latest
// record wins.
func TestIndexConfigRecovered(t *testing.T) {
	dir := t.TempDir()
	l, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndexConfig != nil {
		t.Fatalf("fresh dir recovered index config %+v", res.IndexConfig)
	}
	old := IndexConfig{MinSegments: 5, MaxSegments: 6, AmpBucket: 1, DurBucket: 1}
	want := testIndexConfig()
	if err := l.Append(Record{Type: TypeIndexConfig, Index: old}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeIndexConfig, Index: want}); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, res2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res2.IndexConfig == nil {
		t.Fatal("index config not recovered from records")
	}
	if *res2.IndexConfig != want {
		t.Fatalf("recovered config %+v, want %+v (last record wins)", *res2.IndexConfig, want)
	}
}

// TestIndexConfigSurvivesCompaction: once SetIndexConfig stamps the
// log, a snapshot embeds the config, so recovery finds it even after
// compaction has deleted the segment holding the TypeIndexConfig
// record.
func TestIndexConfigSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments + KeepSnapshots 1 so compaction actually deletes
	// the early segment with the config record.
	opts := Options{Dir: dir, SegmentMaxBytes: 256, KeepSnapshots: 1}
	l, _, err := Open(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := testIndexConfig()
	if err := l.Append(Record{Type: TypeIndexConfig, Index: want}); err != nil {
		t.Fatal(err)
	}
	l.SetIndexConfig(&want)

	db := store.NewDB()
	p, err := db.AddPatient(store.PatientInfo{ID: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S1")
	for i := 0; i < 8; i++ {
		vs := mkVerts(float64(i*4), 4)
		if err := st.Append(vs...); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(Record{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: vs}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Snapshot(db, nil, nil); err != nil {
		t.Fatal(err)
	}
	// A second snapshot pushes the retention floor past the first
	// segment.
	if _, err := l.Snapshot(db, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, res, err := Open(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if res.IndexConfig == nil {
		t.Fatal("index config lost across snapshot compaction")
	}
	if *res.IndexConfig != want {
		t.Fatalf("recovered config %+v, want %+v", *res.IndexConfig, want)
	}
}

// TestSnapshotV1StillReadable: a hand-written version-1 snapshot (no
// index section) loads cleanly with a nil index config.
func TestSnapshotV1StillReadable(t *testing.T) {
	db := store.NewDB()
	p, err := db.AddPatient(store.PatientInfo{ID: "P1", Class: "calm"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S1")
	if err := st.Append(mkVerts(0, 5)...); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "snap-0000000000000007.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	var hdr [4 + 2 + 8]byte
	copy(hdr[:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], snapVersionV1)
	binary.LittleEndian.PutUint64(hdr[6:], 7)
	if _, err := w.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// v1 body: session count then the db payload, with no index
	// section in between.
	if _, err := w.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBinary(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, sessions, ic, _, _, lsn, err := readSnapshotFile(path)
	if err != nil {
		t.Fatalf("v1 snapshot unreadable: %v", err)
	}
	if ic != nil {
		t.Fatalf("v1 snapshot produced index config %+v", ic)
	}
	if lsn != 7 || len(sessions) != 0 {
		t.Fatalf("lsn=%d sessions=%d, want 7/0", lsn, len(sessions))
	}
	var a, b bytes.Buffer
	if err := db.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("v1 snapshot database differs after load")
	}
}

// TestSnapshotV2EmbedsIndexConfig: writer stamps the configured index
// into the snapshot and the reader returns it.
func TestSnapshotV2EmbedsIndexConfig(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := testIndexConfig()
	l.SetIndexConfig(&want)

	db := store.NewDB()
	lsn, err := l.Snapshot(db, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ic, _, _, gotLSN, err := readSnapshotFile(filepath.Join(dir, snapshotName(lsn)))
	if err != nil {
		t.Fatal(err)
	}
	if gotLSN != lsn {
		t.Fatalf("snapshot lsn %d, want %d", gotLSN, lsn)
	}
	if ic == nil || *ic != want {
		t.Fatalf("snapshot index config = %+v, want %+v", ic, want)
	}
}
