package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"stsmatch/internal/store"
)

const (
	snapMagic = "STSS"
	// snapVersion 2 (PR 7) inserts a window-signature index-config
	// section between the session manifest and the database payload;
	// version 3 (PR 8) inserts a standing-subscription section after
	// the index section; version 4 (PR 10) inserts a session-migration
	// section (in-flight prepares and committed tombstones) after the
	// subscription section. The reader still accepts versions 1-3, so
	// older snapshots recover cleanly.
	snapVersion   = 4
	snapVersionV3 = 3
	snapVersionV2 = 2
	snapVersionV1 = 1
)

// SessionState is the durable part of one open ingestion session: the
// identifiers plus the raw-sample anchor the prediction path resumes
// from. The segmenter itself is re-primed from the recovered PLR tail.
type SessionState struct {
	PatientID string
	SessionID string
	Samples   uint64
	LastT     float64
	LastPos   []float64
}

// Snapshot serializes the database plus the open-session manifest to
// snap-<LSN>.db, then compacts: all but the newest KeepSnapshots
// snapshots are deleted, along with every segment entirely below the
// oldest snapshot that remains (so each kept snapshot still has a
// contiguous WAL tail to replay).
//
// The caller must guarantee the database is quiescent for the duration
// (the server holds its session lock), so the snapshot is exactly the
// state produced by every record below the returned LSN.
func (l *Log) Snapshot(db *store.DB, sessions []SessionState, subs []SubState, migrations ...MigrationState) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if err := l.flushLocked(); err != nil {
		return 0, err
	}
	start := time.Now()
	lsn := l.nextLSN
	final := filepath.Join(l.opts.Dir, snapshotName(lsn))
	tmp := final + ".tmp"
	if err := writeSnapshotFile(tmp, lsn, db, sessions, l.idxConf.Load(), subs, migrations); err != nil {
		os.Remove(tmp) //nolint:errcheck
		l.fail(err)
		return 0, l.err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp) //nolint:errcheck
		l.fail(err)
		return 0, l.err
	}
	syncDir(l.opts.Dir)
	l.compactLocked(lsn)
	met.snapshots.Inc()
	met.snapshotSeconds.Observe(time.Since(start).Seconds())
	return lsn, nil
}

// writeSnapshotFile writes and fsyncs one snapshot file.
func writeSnapshotFile(path string, lsn uint64, db *store.DB, sessions []SessionState, idxConf *IndexConfig, subs []SubState, migrations []MigrationState) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	var hdr [4 + 2 + 8]byte
	copy(hdr[:4], snapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], snapVersion)
	binary.LittleEndian.PutUint64(hdr[6:], lsn)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(sessions)))
	for _, ss := range sessions {
		b = appendString(b, ss.PatientID)
		b = appendString(b, ss.SessionID)
		b = binary.AppendUvarint(b, ss.Samples)
		b = appendF64(b, ss.LastT)
		b = binary.AppendUvarint(b, uint64(len(ss.LastPos)))
		for _, x := range ss.LastPos {
			b = appendF64(b, x)
		}
	}
	// v2: index-config section — presence byte, then the config. The
	// config must live in snapshots as well as records because
	// compaction may delete the segment holding the TypeIndexConfig
	// record.
	if idxConf == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(idxConf.MinSegments))
		b = binary.AppendUvarint(b, uint64(idxConf.MaxSegments))
		b = appendF64(b, idxConf.AmpBucket)
		b = appendF64(b, idxConf.DurBucket)
	}
	// v3: standing-subscription section — count, then each state as a
	// length-prefixed appendSubState blob (the TypeSubUpsert body).
	// Subscription state must live in snapshots because compaction may
	// delete the segments holding the registration records and the
	// vertex appends the events were derived from.
	b = binary.AppendUvarint(b, uint64(len(subs)))
	for i := range subs {
		blob := appendSubState(nil, &subs[i])
		b = binary.AppendUvarint(b, uint64(len(blob)))
		b = append(b, blob...)
	}
	// v4: session-migration section — count, then each state. Migration
	// state must live in snapshots because compaction may delete the
	// segment holding the TypeSessionMigrate record while the tombstone
	// (or an in-flight prepare) is still load-bearing.
	b = binary.AppendUvarint(b, uint64(len(migrations)))
	for _, m := range migrations {
		b = appendString(b, m.SessionID)
		b = appendString(b, m.PatientID)
		b = appendString(b, m.Target)
		b = binary.AppendUvarint(b, m.Epoch)
		b = append(b, m.Phase)
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	if err := db.WriteBinary(w); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// readSnapshotFile loads one snapshot file (version 1 through 4). The
// returned IndexConfig is nil for v1 snapshots and for newer snapshots
// written without an index; the subscription list is nil below v3 and
// the migration list nil below v4.
func readSnapshotFile(path string) (*store.DB, []SessionState, *IndexConfig, []SubState, []MigrationState, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, nil, nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [4 + 2 + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot header: %w", err)
	}
	if string(hdr[:4]) != snapMagic {
		return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: bad snapshot magic %q", hdr[:4])
	}
	version := binary.LittleEndian.Uint16(hdr[4:6])
	if version < snapVersionV1 || version > snapVersion {
		return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: unsupported snapshot version %d", version)
	}
	lsn := binary.LittleEndian.Uint64(hdr[6:])
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, nil, nil, nil, 0, err
	}
	if n > 1<<20 {
		return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: implausible session count %d", n)
	}
	sessions := make([]SessionState, 0, n)
	for i := uint64(0); i < n; i++ {
		var ss SessionState
		if ss.PatientID, err = readSnapString(r); err != nil {
			return nil, nil, nil, nil, nil, 0, err
		}
		if ss.SessionID, err = readSnapString(r); err != nil {
			return nil, nil, nil, nil, nil, 0, err
		}
		if ss.Samples, err = binary.ReadUvarint(r); err != nil {
			return nil, nil, nil, nil, nil, 0, err
		}
		var tbuf [8]byte
		if _, err := io.ReadFull(r, tbuf[:]); err != nil {
			return nil, nil, nil, nil, nil, 0, err
		}
		ss.LastT = math.Float64frombits(binary.LittleEndian.Uint64(tbuf[:]))
		dims, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, nil, nil, nil, nil, 0, err
		}
		if dims > maxDims {
			return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: implausible anchor dims %d", dims)
		}
		ss.LastPos = make([]float64, dims)
		for j := range ss.LastPos {
			if _, err := io.ReadFull(r, tbuf[:]); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			ss.LastPos[j] = math.Float64frombits(binary.LittleEndian.Uint64(tbuf[:]))
		}
		sessions = append(sessions, ss)
	}
	var idxConf *IndexConfig
	if version >= snapVersionV2 {
		present, err := r.ReadByte()
		if err != nil {
			return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot index section: %w", err)
		}
		if present != 0 {
			var ic IndexConfig
			minSeg, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			maxSeg, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			if minSeg > math.MaxUint32 || maxSeg > math.MaxUint32 {
				return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: implausible index config %d/%d", minSeg, maxSeg)
			}
			ic.MinSegments, ic.MaxSegments = uint32(minSeg), uint32(maxSeg)
			var tbuf [8]byte
			if _, err := io.ReadFull(r, tbuf[:]); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			ic.AmpBucket = math.Float64frombits(binary.LittleEndian.Uint64(tbuf[:]))
			if _, err := io.ReadFull(r, tbuf[:]); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			ic.DurBucket = math.Float64frombits(binary.LittleEndian.Uint64(tbuf[:]))
			idxConf = &ic
		}
	}
	var subs []SubState
	if version >= snapVersionV3 {
		ns, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot subscription section: %w", err)
		}
		if ns > 1<<20 {
			return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: implausible subscription count %d", ns)
		}
		for i := uint64(0); i < ns; i++ {
			sz, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			if sz > maxPayload {
				return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: implausible subscription blob length %d", sz)
			}
			blob := make([]byte, sz)
			if _, err := io.ReadFull(r, blob); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			d := decoder{b: blob}
			st := d.subState()
			if d.err != nil {
				return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot subscription %d: %w", i, d.err)
			}
			if d.off != len(d.b) {
				return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot subscription %d: %d trailing bytes", i, len(d.b)-d.off)
			}
			subs = append(subs, *st)
		}
	}
	var migrations []MigrationState
	if version >= snapVersion {
		nm, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot migration section: %w", err)
		}
		if nm > 1<<20 {
			return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: implausible migration count %d", nm)
		}
		for i := uint64(0); i < nm; i++ {
			var m MigrationState
			if m.SessionID, err = readSnapString(r); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			if m.PatientID, err = readSnapString(r); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			if m.Target, err = readSnapString(r); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			if m.Epoch, err = binary.ReadUvarint(r); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			if m.Phase, err = r.ReadByte(); err != nil {
				return nil, nil, nil, nil, nil, 0, err
			}
			if m.Phase < MigratePrepare || m.Phase > MigrateAbort {
				return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot migration %d: invalid phase %d", i, m.Phase)
			}
			migrations = append(migrations, m)
		}
	}
	db, err := store.ReadBinary(r)
	if err != nil {
		return nil, nil, nil, nil, nil, 0, fmt.Errorf("wal: snapshot payload: %w", err)
	}
	return db, sessions, idxConf, subs, migrations, lsn, nil
}

func readSnapString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxString {
		return "", fmt.Errorf("wal: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// compactLocked prunes old snapshots and deletes log segments no
// retained snapshot needs. Recovery may fall back to the OLDEST kept
// snapshot when newer ones are unreadable, so segments are retained
// back to that snapshot's LSN — not just the newest's — keeping the
// snapshot+tail replay contiguous for every snapshot still on disk.
// The active segment is never deleted. lsn is the LSN of the snapshot
// just written, used as the retention floor if listing fails.
func (l *Log) compactLocked(lsn uint64) {
	snaps, err := listSeq(l.opts.Dir, "snap-", ".db")
	if err != nil {
		return
	}
	for i := 0; i < len(snaps)-l.opts.KeepSnapshots; i++ {
		os.Remove(filepath.Join(l.opts.Dir, snapshotName(snaps[i]))) //nolint:errcheck
	}
	retain := lsn
	if oldest := len(snaps) - l.opts.KeepSnapshots; oldest < len(snaps) {
		if oldest < 0 {
			oldest = 0
		}
		if snaps[oldest] < retain {
			retain = snaps[oldest]
		}
	}
	segs, err := listSeq(l.opts.Dir, "wal-", ".log")
	if err != nil {
		return
	}
	for i, first := range segs {
		if first == l.segFirst {
			break
		}
		// A segment's records end where the next one begins; it is
		// disposable once that boundary is at or below every LSN a
		// surviving snapshot could resume replay from.
		if i+1 < len(segs) && segs[i+1] <= retain {
			os.Remove(filepath.Join(l.opts.Dir, segmentName(first))) //nolint:errcheck
		}
	}
	syncDir(l.opts.Dir)
}
