package wal

import (
	"errors"
	"testing"

	"stsmatch/internal/store"
)

func mkBatch(session string, epoch, firstSeq uint64, recs ...Record) Batch {
	return Batch{
		Source:    "http://primary",
		SessionID: session,
		PatientID: "P1",
		Epoch:     epoch,
		FirstSeq:  firstSeq,
		Records:   recs,
	}
}

func vertexRec(n int) Record {
	return Record{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(float64(n), 2)}
}

func TestBatchRoundTrip(t *testing.T) {
	b := mkBatch("S1", 3, 17,
		Record{Type: TypePatientUpsert, Patient: store.PatientInfo{ID: "P1", Class: "calm", Age: 61}},
		Record{Type: TypeStreamOpen, PatientID: "P1", SessionID: "S1"},
		vertexRec(0),
		Record{Type: TypeSessionAnchor, PatientID: "P1", SessionID: "S1", Samples: 9, AnchorT: 1.5, AnchorPos: []float64{2}},
		Record{Type: TypeReplicaSnapshot, Patient: store.PatientInfo{ID: "P1"}, PatientID: "P1", SessionID: "S1",
			Vertices: mkVerts(0, 3), Samples: 12, AnchorT: 2.5, AnchorPos: []float64{4}},
		Record{Type: TypeReplicaPromote, PatientID: "P1", SessionID: "S1", Samples: 12, AnchorT: 2.5, AnchorPos: []float64{4}, Epoch: 3},
	)
	got, err := DecodeBatch(EncodeBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != b.Source || got.SessionID != b.SessionID || got.PatientID != b.PatientID ||
		got.Epoch != b.Epoch || got.FirstSeq != b.FirstSeq || len(got.Records) != len(b.Records) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i, rec := range got.Records {
		if rec.LSN != b.FirstSeq+uint64(i) {
			t.Errorf("record %d seq %d, want %d", i, rec.LSN, b.FirstSeq+uint64(i))
		}
		if rec.Type != b.Records[i].Type {
			t.Errorf("record %d type %v, want %v", i, rec.Type, b.Records[i].Type)
		}
	}
	if got.Records[5].Epoch != 3 {
		t.Errorf("promote epoch %d, want 3", got.Records[5].Epoch)
	}
}

func TestBatchDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeBatch(mkBatch("S1", 1, 1, vertexRec(0), vertexRec(1)))
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)-3] },
		"bad magic":     func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"flipped byte":  func(b []byte) []byte { b[len(b)-1] ^= 0x10; return b },
		"trailing junk": func(b []byte) []byte { return append(b, 0xAB) },
	} {
		buf := append([]byte(nil), enc...)
		if _, err := DecodeBatch(mutate(buf)); !errors.Is(err, ErrTorn) {
			t.Errorf("%s: err = %v, want ErrTorn", name, err)
		}
	}
}

func TestBatchDecodeRejectsNonDenseSequence(t *testing.T) {
	// Replace the encoder-assigned second frame (seq 2) with one
	// carrying seq 3, leaving a hole the decoder must catch.
	good := mkBatch("S1", 1, 1, vertexRec(0), vertexRec(1))
	enc := EncodeBatch(good)
	rogue := good.Records[1]
	rogue.LSN = 2
	prefixLen := len(enc) - (frameHeaderLen + len(encodePayload(rogue)))
	rogue.LSN = 3
	spliced := append(enc[:prefixLen:prefixLen], appendFrame(nil, encodePayload(rogue))...)
	if _, err := DecodeBatch(spliced); !errors.Is(err, ErrTorn) {
		t.Fatalf("non-dense batch accepted: %v", err)
	}
}

func TestCursorAcceptContiguous(t *testing.T) {
	var c Cursor
	apply, err := c.Accept(mkBatch("S1", 1, 1, vertexRec(0), vertexRec(1)))
	if err != nil || len(apply) != 2 {
		t.Fatalf("apply = %d records, err %v", len(apply), err)
	}
	if c.Next != 3 {
		t.Fatalf("cursor at %d, want 3", c.Next)
	}
	apply, err = c.Accept(mkBatch("S1", 1, 3, vertexRec(2)))
	if err != nil || len(apply) != 1 || c.Next != 4 {
		t.Fatalf("second batch: apply %d, next %d, err %v", len(apply), c.Next, err)
	}
}

func TestCursorSkipsDuplicates(t *testing.T) {
	c := Cursor{Next: 3, Epoch: 1}
	// Batch 1..4 overlaps: 1,2 already applied, 3,4 are new.
	apply, err := c.Accept(mkBatch("S1", 1, 1, vertexRec(0), vertexRec(1), vertexRec(2), vertexRec(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(apply) != 2 || apply[0].LSN != 3 || apply[1].LSN != 4 {
		t.Fatalf("apply = %+v, want seqs 3,4", apply)
	}
	if c.Next != 5 {
		t.Fatalf("cursor at %d, want 5", c.Next)
	}
}

func TestCursorRejectsGap(t *testing.T) {
	c := Cursor{Next: 3, Epoch: 1}
	if _, err := c.Accept(mkBatch("S1", 1, 5, vertexRec(4))); !errors.Is(err, ErrGap) {
		t.Fatalf("gap accepted: %v", err)
	}
	if c.Next != 3 || c.Epoch != 1 {
		t.Fatalf("cursor mutated on rejected batch: %+v", c)
	}
}

func TestCursorSnapshotResets(t *testing.T) {
	c := Cursor{Next: 3, Epoch: 1}
	snap := Record{Type: TypeReplicaSnapshot, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 5)}
	// Catch-up after a gap: snapshot at seq 9 re-anchors, follow-on
	// records apply.
	apply, err := c.Accept(mkBatch("S1", 1, 9, snap, vertexRec(5)))
	if err != nil || len(apply) != 2 {
		t.Fatalf("apply %d, err %v", len(apply), err)
	}
	if c.Next != 11 {
		t.Fatalf("cursor at %d, want 11", c.Next)
	}
}

func TestCursorEpochFencing(t *testing.T) {
	c := Cursor{Next: 7, Epoch: 2}

	// A deposed primary (epoch 1) is rejected outright, even with
	// plausible sequence numbers.
	if _, err := c.Accept(mkBatch("S1", 1, 7, vertexRec(0))); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch accepted: %v", err)
	}

	// A new primary (epoch 3) must lead with a snapshot; bare records
	// cannot anchor its fresh numbering.
	if _, err := c.Accept(mkBatch("S1", 3, 1, vertexRec(0))); !errors.Is(err, ErrGap) {
		t.Fatalf("epoch jump without snapshot accepted: %v", err)
	}
	if c.Epoch != 2 {
		t.Fatalf("epoch committed on rejected batch: %d", c.Epoch)
	}

	// With a snapshot it goes through and the epoch advances.
	snap := Record{Type: TypeReplicaSnapshot, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 4)}
	apply, err := c.Accept(mkBatch("S1", 3, 1, snap, vertexRec(1)))
	if err != nil || len(apply) != 2 {
		t.Fatalf("promoted primary rejected: apply %d, err %v", len(apply), err)
	}
	if c.Epoch != 3 || c.Next != 3 {
		t.Fatalf("cursor = %+v, want epoch 3 next 3", c)
	}

	// An empty batch from yet another epoch is a gap, not a silent
	// epoch commit.
	if _, err := c.Accept(mkBatch("S1", 4, 1)); !errors.Is(err, ErrGap) {
		t.Fatalf("empty epoch-advancing batch accepted: %v", err)
	}
	if c.Epoch != 3 {
		t.Fatalf("epoch advanced by empty batch: %d", c.Epoch)
	}
}

func TestNewRecordTypesRoundTripThroughLog(t *testing.T) {
	dir := t.TempDir()
	l, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fresh {
		t.Fatal("fresh dir reported stale")
	}
	snap := Record{
		Type: TypeReplicaSnapshot, Patient: store.PatientInfo{ID: "P9", Class: "irregular"},
		PatientID: "P9", SessionID: "S9", Vertices: mkVerts(0, 6),
		Samples: 44, AnchorT: 5.5, AnchorPos: []float64{1.25},
	}
	promote := Record{
		Type: TypeReplicaPromote, PatientID: "P9", SessionID: "S9",
		Samples: 44, AnchorT: 5.5, AnchorPos: []float64{1.25}, Epoch: 2,
	}
	if err := l.Append(snap); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(promote); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, res2, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot rebuilt the stream; promote reopened the session with
	// the anchor.
	p := res2.DB.Patient("P9")
	if p == nil {
		t.Fatal("replica snapshot did not recover the patient")
	}
	st := p.StreamBySession("S9")
	if st == nil || st.Len() != 6 {
		t.Fatalf("replica stream not recovered (len %v)", st)
	}
	if len(res2.Sessions) != 1 {
		t.Fatalf("recovered %d open sessions, want 1 (promoted)", len(res2.Sessions))
	}
	ss := res2.Sessions[0]
	if ss.SessionID != "S9" || ss.Samples != 44 || ss.LastT != 5.5 {
		t.Fatalf("promoted session state = %+v", ss)
	}
}
