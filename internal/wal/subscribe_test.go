package wal

import (
	"reflect"
	"testing"

	"stsmatch/internal/store"
)

func testSubState() *SubState {
	return &SubState{
		ID:        "sub-1",
		PatientID: "P1",
		SessionID: "S1",
		Threshold: 2.5,
		K:         3,
		Pattern:   mkVerts(0, 3),
		NextSeq:   4,
		Delivered: 2,
		Cursors:   []SubCursor{{PatientID: "P1", SessionID: "S1", Len: 7}},
		Events: []SubEvent{
			{Seq: 1, PatientID: "P1", SessionID: "S1", Start: 2, N: 3,
				Relation: 1, Distance: 0.5, Weight: 0.4, EndT: 9.5, At: 100},
			{Seq: 3, PatientID: "P1", SessionID: "S2", Start: 4, N: 3,
				Relation: 0, Distance: 0.1, Weight: 0.9, EndT: 12, At: 101},
		},
	}
}

func TestSubRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: TypeSubUpsert, LSN: 9, Sub: testSubState()},
		{Type: TypeSubDelete, LSN: 10, SubID: "sub-1"},
		{Type: TypeSubAck, LSN: 11, SubID: "sub-1", SubAck: 42},
	}
	for _, rec := range recs {
		got, err := decodePayload(encodePayload(rec))
		if err != nil {
			t.Fatalf("%s: %v", rec.Type, err)
		}
		if got.Type != rec.Type || got.LSN != rec.LSN ||
			got.SubID != rec.SubID || got.SubAck != rec.SubAck {
			t.Errorf("%s: header mismatch: got %+v want %+v", rec.Type, got, rec)
		}
		if rec.Sub != nil && !reflect.DeepEqual(got.Sub, rec.Sub) {
			t.Errorf("%s: state mismatch:\n got %+v\nwant %+v", rec.Type, got.Sub, rec.Sub)
		}
	}
}

// TestSnapshotCarriesSubscriptions: the v3 snapshot section round-trips
// full subscription state (cursors, buffered events, sequence numbers)
// through compaction.
func TestSnapshotCarriesSubscriptions(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := store.NewDB()
	p, err := db.AddPatient(store.PatientInfo{ID: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddStream("S1").Append(mkVerts(0, 7)...); err != nil {
		t.Fatal(err)
	}
	want := []SubState{*testSubState(), {ID: "sub-2", Pattern: mkVerts(0, 2), Threshold: 1, NextSeq: 1}}
	if _, err := l.Snapshot(db, nil, want); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subscriptions) != len(want) {
		t.Fatalf("recovered %d subscriptions, want %d", len(res.Subscriptions), len(want))
	}
	got := res.Subscriptions[0]
	if !reflect.DeepEqual(got, want[0]) {
		t.Errorf("subscription state mismatch:\n got %+v\nwant %+v", got, want[0])
	}
	if res.Subscriptions[1].ID != "sub-2" || res.Subscriptions[1].NextSeq != 1 {
		t.Errorf("second subscription mismatch: %+v", res.Subscriptions[1])
	}
}

// TestSubOpsReplayedInLogOrder: recovery returns subscription ops —
// upserts, acks, deletes, and the append boundaries recorded while a
// subscription was live — in exactly log order, so the server can
// re-derive the pre-crash event sequence deterministically.
func TestSubOpsReplayedInLogOrder(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := testSubState()
	sub.Cursors = []SubCursor{{PatientID: "P1", SessionID: "S1", Len: 3}}
	sub.NextSeq = 1
	sub.Delivered = 0
	sub.Events = nil
	recs := []Record{
		{Type: TypePatientUpsert, Patient: store.PatientInfo{ID: "P1"}},
		{Type: TypeStreamOpen, PatientID: "P1", SessionID: "S1"},
		// Before any subscription: no boundary op recorded.
		{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(0, 3)},
		{Type: TypeSubUpsert, Sub: sub},
		{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(3, 2)},
		{Type: TypeSubAck, SubID: "sub-1", SubAck: 1},
		{Type: TypeSubDelete, SubID: "sub-1"},
		// After the delete: no live subscription, no boundary op.
		{Type: TypeVertexAppend, PatientID: "P1", SessionID: "S1", Vertices: mkVerts(5, 1)},
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.NumVertices() != 6 {
		t.Fatalf("replayed %d vertices, want 6", res.DB.NumVertices())
	}
	ops := res.SubOps
	if len(ops) != 4 {
		t.Fatalf("got %d sub ops, want 4: %+v", len(ops), ops)
	}
	if ops[0].Upsert == nil || ops[0].Upsert.ID != "sub-1" {
		t.Errorf("op 0 should be the upsert, got %+v", ops[0])
	}
	if ops[1].Upsert != nil || ops[1].DeleteID != "" || ops[1].AckID != "" ||
		ops[1].PatientID != "P1" || ops[1].SessionID != "S1" || ops[1].From != 3 || ops[1].To != 5 {
		t.Errorf("op 1 should be append boundary [3,5), got %+v", ops[1])
	}
	if ops[2].AckID != "sub-1" || ops[2].Ack != 1 {
		t.Errorf("op 2 should be the ack, got %+v", ops[2])
	}
	if ops[3].DeleteID != "sub-1" {
		t.Errorf("op 3 should be the delete, got %+v", ops[3])
	}
}

// TestDeletedSubscriptionIgnoresLaterAcks: an ack for a deleted
// subscription replays as a no-op instead of resurrecting it.
func TestDeletedSubscriptionIgnoresLaterAcks(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := testSubState()
	for _, rec := range []Record{
		{Type: TypeSubUpsert, Sub: sub},
		{Type: TypeSubDelete, SubID: sub.ID},
		{Type: TypeSubAck, SubID: sub.ID, SubAck: 9},
	} {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, res, err := Open(Options{Dir: dir}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.SubOps {
		if op.AckID != "" {
			t.Errorf("ack after delete should not replay, got %+v", op)
		}
	}
}
