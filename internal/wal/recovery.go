package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// RecoveryResult reports what Open found and rebuilt.
type RecoveryResult struct {
	// DB is the recovered database: the latest valid snapshot with the
	// WAL tail replayed on top (or the caller's initial database when
	// the directory was fresh).
	DB *store.DB

	// Sessions are the ingestion sessions that were open at the crash,
	// in open order.
	Sessions []SessionState

	// Fresh reports that the directory held no snapshot and no
	// segments, so DB is the initial database untouched.
	Fresh bool

	// SnapshotLSN is the LSN of the loaded snapshot (0 when none).
	SnapshotLSN uint64

	// RecordsReplayed counts WAL records applied on top of the
	// snapshot.
	RecordsReplayed uint64

	// RecordsTruncated counts torn or corrupt records dropped;
	// everything after the first one is discarded too, so this is 0 or
	// 1 per recovery in practice.
	RecordsTruncated uint64

	// BytesTruncated is how many bytes of torn log were cut off.
	BytesTruncated int64

	// SegmentsScanned is how many log segments replay visited.
	SegmentsScanned int

	// IndexConfig is the persisted window-signature index
	// configuration, from the snapshot or the latest TypeIndexConfig
	// record (records win). Nil when the directory never enabled the
	// index. The caller rebuilds the index from DB with this config.
	IndexConfig *IndexConfig

	// Subscriptions are the standing subscriptions materialized in the
	// loaded snapshot. SubOps then replays the WAL tail's
	// subscription-relevant history on top: the caller seeds its
	// subscription manager from Subscriptions and applies SubOps in
	// order, re-deriving exactly the events the pre-crash node emitted
	// (evaluation is deterministic in log order, and window content
	// below each op's To boundary is immutable under append-only
	// streams).
	Subscriptions []SubState
	SubOps        []SubReplayOp

	// Migrations are the surviving session-migration states, from the
	// snapshot with the WAL tail's TypeSessionMigrate records replayed
	// on top: committed tombstones (the session migrated away; the
	// owner answers stale routes with 410 + Target) and in-flight
	// prepares (the session is in Sessions but must resume fenced —
	// a cutover was racing when the node went down).
	Migrations []MigrationState

	// Duration is the wall time of snapshot load plus replay.
	Duration time.Duration
}

// SubReplayOp is one subscription-relevant event from the WAL tail, in
// log order. Exactly one of the four shapes is set: Upsert (a
// registration or replicated re-arm), DeleteID (a deletion), AckID+Ack
// (a delivery acknowledgement), or PatientID/SessionID/From/To (PLR
// vertices applied to a stream while subscriptions were live — the
// owner re-evaluates windows ending in [From, To) against each
// registered pattern, clamped by that subscription's cursor).
type SubReplayOp struct {
	Upsert   *SubState
	DeleteID string
	AckID    string
	Ack      uint64

	PatientID string
	SessionID string
	From, To  int
}

// Open opens (creating if necessary) the write-ahead log in opts.Dir
// and runs crash recovery: load the newest readable snapshot, replay
// every record at or above its LSN in segment order, and truncate the
// log at the first torn or corrupt record. The initial database is
// used only when the directory holds no prior state (it seeds the
// first snapshot so preloaded history is durable from the start);
// otherwise the recovered state wins and initial is ignored.
func Open(opts Options, initial *store.DB) (*Log, *RecoveryResult, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	removeTempFiles(opts.Dir)

	start := time.Now()
	snaps, err := listSeq(opts.Dir, "snap-", ".db")
	if err != nil {
		return nil, nil, err
	}
	segs, err := listSeq(opts.Dir, "wal-", ".log")
	if err != nil {
		return nil, nil, err
	}

	res := &RecoveryResult{Fresh: len(snaps) == 0 && len(segs) == 0}
	l := &Log{opts: opts}

	// Load the newest snapshot that parses; a torn snapshot (crash
	// during rename is prevented, but disks rot) falls back to the
	// previous one, and failing all of them to an empty database plus
	// full replay.
	var db *store.DB
	var sessions []SessionState
	var snapIdxConf *IndexConfig
	var snapSubs []SubState
	var snapMigs []MigrationState
	var snapLSN uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		d, ss, ic, sb, mg, lsn, err := readSnapshotFile(filepath.Join(opts.Dir, snapshotName(snaps[i])))
		if err == nil {
			db, sessions, snapIdxConf, snapSubs, snapMigs, snapLSN = d, ss, ic, sb, mg, lsn
			break
		}
	}
	if db == nil {
		if res.Fresh && initial != nil {
			db = initial
		} else {
			db = store.NewDB()
		}
	}
	res.SnapshotLSN = snapLSN

	rs := &replayState{
		db:         db,
		idx:        make(map[string]int),
		indexConf:  snapIdxConf,
		subs:       make(map[string]bool),
		migrations: make(map[string]MigrationState),
	}
	for _, ss := range sessions {
		rs.open(ss)
	}
	for i := range snapSubs {
		rs.subs[snapSubs[i].ID] = true
	}
	for _, m := range snapMigs {
		rs.migrations[m.SessionID] = m
	}

	// Replay segments in LSN order, verifying checksums and LSN
	// contiguity; the first torn record truncates the log there and
	// discards anything after it. Only ErrTorn is recoverable — I/O
	// errors and unsupported versions fail Open rather than destroy
	// data a retry (or a newer binary) could still read.
	nextLSN := snapLSN
	if nextLSN == 0 {
		nextLSN = 1
	}
	resume := -1 // index in segs of the segment to keep appending to
	var resumeEnd int64
	for i, first := range segs {
		if first > nextLSN {
			// Records in [nextLSN, first) exist nowhere: replaying over
			// the hole would silently produce an inconsistent database.
			return nil, nil, fmt.Errorf("wal: gap in log: segment %s starts at LSN %d but %d is next; refusing to replay over missing records",
				segmentName(first), first, nextLSN)
		}
		end, last, err := replaySegment(filepath.Join(opts.Dir, segmentName(first)), first, snapLSN, rs, res)
		res.SegmentsScanned++
		if last >= nextLSN {
			nextLSN = last + 1
		}
		resume, resumeEnd = i, end
		if err != nil {
			if !errors.Is(err, ErrTorn) {
				return nil, nil, fmt.Errorf("wal: reading %s: %w", segmentName(first), err)
			}
			// Truncate the torn tail and drop any later segments
			// (they cannot contain valid records past a tear).
			res.RecordsTruncated++
			if fi, statErr := os.Stat(filepath.Join(opts.Dir, segmentName(first))); statErr == nil {
				res.BytesTruncated += fi.Size() - end
			}
			os.Truncate(filepath.Join(opts.Dir, segmentName(first)), end) //nolint:errcheck
			for _, later := range segs[i+1:] {
				os.Remove(filepath.Join(opts.Dir, segmentName(later))) //nolint:errcheck
			}
			break
		}
	}
	l.nextLSN = nextLSN
	res.Sessions = rs.list()
	res.RecordsReplayed = rs.applied
	res.DB = db
	res.IndexConfig = rs.indexConf
	res.Subscriptions = snapSubs
	res.SubOps = rs.subOps
	res.Migrations = rs.migrationList()
	// Carry the recovered config forward so the next snapshot embeds it
	// even if the owner never calls SetIndexConfig again.
	l.idxConf.Store(rs.indexConf)

	// Reopen the tail segment for appending, or start the first one. A
	// tail whose own header was torn (crash between segment creation
	// and header fsync) cannot be resumed: appending at offset 0 would
	// leave the segment headerless, and the next recovery would fail
	// its magic check and truncate everything written since. Replace it
	// with a fresh, properly-headered segment instead.
	if resume >= 0 && resumeEnd < segHdrLen {
		os.Remove(filepath.Join(opts.Dir, segmentName(segs[resume]))) //nolint:errcheck
		syncDir(opts.Dir)
		resume = -1
	}
	if resume >= 0 {
		err = l.resumeSegmentLocked(segs[resume], resumeEnd)
	} else {
		err = l.openSegmentLocked(l.nextLSN)
	}
	if err != nil {
		return nil, nil, err
	}

	res.Duration = time.Since(start)
	met.recoverySeconds.Observe(res.Duration.Seconds())
	met.replayedRecords.Set(int64(res.RecordsReplayed))
	met.truncatedRecords.Set(int64(res.RecordsTruncated))

	// A fresh directory seeded with preloaded history gets an initial
	// snapshot so the data dir is self-contained from the start.
	if res.Fresh && initial != nil && initial.NumPatients() > 0 {
		if _, err := l.Snapshot(initial, nil, nil); err != nil {
			l.Close() //nolint:errcheck
			return nil, nil, err
		}
	}

	if opts.FsyncInterval > 0 {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher()
	}
	return l, res, nil
}

// replaySegment reads one segment, applying records with LSN >=
// snapLSN. It returns the offset just past the last valid record, the
// last valid LSN seen (0 if none), and a non-nil error if the segment
// could not be fully read: an error wrapping ErrTorn means the segment
// is torn at that offset (safe to truncate there); any other error —
// I/O failure, unsupported version — means the data may be intact and
// the caller must not truncate.
func replaySegment(path string, nameLSN, snapLSN uint64, rs *replayState, res *RecoveryResult) (int64, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: segment header: %v", ErrTorn, err)
	}
	if string(hdr[:4]) != segMagic {
		return 0, 0, fmt.Errorf("%w: bad segment magic %q", ErrTorn, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != segVersion {
		return 0, 0, fmt.Errorf("wal: unsupported segment version %d", v)
	}
	if first := binary.LittleEndian.Uint64(hdr[6:]); first != nameLSN {
		return 0, 0, fmt.Errorf("%w: segment header LSN %d != name %d", ErrTorn, first, nameLSN)
	}

	offset := int64(segHdrLen)
	expect := nameLSN
	var last uint64
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			return offset, last, nil
		}
		if err != nil {
			return offset, last, err
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return offset, last, err
		}
		if rec.LSN != expect {
			return offset, last, fmt.Errorf("%w: LSN %d, expected %d", ErrTorn, rec.LSN, expect)
		}
		if rec.LSN >= snapLSN {
			if err := rs.apply(rec); err != nil {
				return offset, last, fmt.Errorf("%w: applying %s: %v", ErrTorn, rec.Type, err)
			}
		}
		offset += int64(frameHeaderLen + len(payload))
		last = rec.LSN
		expect++
	}
}

// replayState rebuilds the database and the open-session set from
// records. Application is tolerant of replays that overlap the
// snapshot: existing patients/streams are reused and vertices that do
// not advance a stream are skipped.
type replayState struct {
	db         *store.DB
	sessions   []SessionState
	idx        map[string]int            // sessionID -> index in sessions, -1 when closed
	indexConf  *IndexConfig              // latest TypeIndexConfig seen (snapshot-seeded)
	subs       map[string]bool           // live subscription IDs (snapshot-seeded)
	subOps     []SubReplayOp             // subscription-relevant history, log order
	migrations map[string]MigrationState // surviving migration states (snapshot-seeded)
	applied    uint64
}

func (rs *replayState) open(ss SessionState) {
	if i, ok := rs.idx[ss.SessionID]; ok && i >= 0 {
		return
	}
	rs.idx[ss.SessionID] = len(rs.sessions)
	rs.sessions = append(rs.sessions, ss)
}

// migrationList returns the surviving migration states sorted by
// session ID, so recovery output is deterministic.
func (rs *replayState) migrationList() []MigrationState {
	out := make([]MigrationState, 0, len(rs.migrations))
	for _, m := range rs.migrations {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SessionID < out[b].SessionID })
	return out
}

func (rs *replayState) list() []SessionState {
	out := make([]SessionState, 0, len(rs.sessions))
	for _, ss := range rs.sessions {
		if i, ok := rs.idx[ss.SessionID]; ok && i >= 0 {
			out = append(out, ss)
		}
	}
	return out
}

func (rs *replayState) patient(id string) (*store.Patient, error) {
	if p := rs.db.Patient(id); p != nil {
		return p, nil
	}
	return rs.db.AddPatient(store.PatientInfo{ID: id})
}

func (rs *replayState) apply(rec Record) error {
	rs.applied++
	switch rec.Type {
	case TypePatientUpsert:
		p := rs.db.Patient(rec.Patient.ID)
		if p == nil {
			_, err := rs.db.AddPatient(rec.Patient)
			return err
		}
		p.Info = rec.Patient
	case TypeStreamOpen:
		p, err := rs.patient(rec.PatientID)
		if err != nil {
			return err
		}
		if p.StreamBySession(rec.SessionID) == nil {
			p.AddStream(rec.SessionID)
		}
		rs.open(SessionState{PatientID: rec.PatientID, SessionID: rec.SessionID})
	case TypeVertexAppend:
		p, err := rs.patient(rec.PatientID)
		if err != nil {
			return err
		}
		st := p.StreamBySession(rec.SessionID)
		if st == nil {
			st = p.AddStream(rec.SessionID)
		}
		return rs.appendTail(st, rec)
	case TypeSessionClose:
		if i, ok := rs.idx[rec.SessionID]; ok && i >= 0 {
			rs.idx[rec.SessionID] = -1
		}
	case TypeSessionAnchor:
		if i, ok := rs.idx[rec.SessionID]; ok && i >= 0 {
			rs.sessions[i].Samples = rec.Samples
			rs.sessions[i].LastT = rec.AnchorT
			rs.sessions[i].LastPos = rec.AnchorPos
		}
	case TypeReplicaSnapshot:
		// Replica catch-up state journaled by a follower: rebuild the
		// stream (and patient) but do NOT open the session locally — the
		// primary owns it; this node only holds the copy.
		p, err := rs.patient(rec.PatientID)
		if err != nil {
			return err
		}
		if rec.Patient.ID == rec.PatientID && rec.PatientID != "" {
			p.Info = rec.Patient
		}
		st := p.StreamBySession(rec.SessionID)
		if st == nil {
			st = p.AddStream(rec.SessionID)
		}
		return rs.appendTail(st, rec)
	case TypeReplicaPromote:
		// This node took over the session at a failover: reopen it with
		// the promoted anchor so a later crash still recovers it as
		// primary. A session that migrated away and came back sheds its
		// tombstone — this node owns it again.
		delete(rs.migrations, rec.SessionID)
		rs.open(SessionState{PatientID: rec.PatientID, SessionID: rec.SessionID})
		if i, ok := rs.idx[rec.SessionID]; ok && i >= 0 {
			rs.sessions[i].Samples = rec.Samples
			rs.sessions[i].LastT = rec.AnchorT
			rs.sessions[i].LastPos = rec.AnchorPos
		}
	case TypeIndexConfig:
		c := rec.Index
		rs.indexConf = &c // last record wins
	case TypeSubUpsert:
		if rec.Sub == nil {
			return fmt.Errorf("sub-upsert without state")
		}
		rs.subs[rec.Sub.ID] = true
		rs.subOps = append(rs.subOps, SubReplayOp{Upsert: rec.Sub})
	case TypeSubDelete:
		delete(rs.subs, rec.SubID)
		rs.subOps = append(rs.subOps, SubReplayOp{DeleteID: rec.SubID})
	case TypeSubAck:
		if rs.subs[rec.SubID] {
			rs.subOps = append(rs.subOps, SubReplayOp{AckID: rec.SubID, Ack: rec.SubAck})
		}
	case TypeSessionMigrate:
		switch rec.Phase {
		case MigratePrepare:
			// The session stays open (it resumes fenced on the source);
			// the prepare marks the cutover as re-drivable.
			rs.migrations[rec.SessionID] = MigrationState{
				SessionID: rec.SessionID, PatientID: rec.PatientID,
				Target: rec.Target, Epoch: rec.Epoch, Phase: MigratePrepare,
			}
		case MigrateCommit:
			// The target is primary now: close the session here and keep
			// a tombstone so stale routes are answered 410 + Target.
			if i, ok := rs.idx[rec.SessionID]; ok && i >= 0 {
				rs.idx[rec.SessionID] = -1
			}
			rs.migrations[rec.SessionID] = MigrationState{
				SessionID: rec.SessionID, PatientID: rec.PatientID,
				Target: rec.Target, Epoch: rec.Epoch, Phase: MigrateCommit,
			}
		case MigrateAbort:
			delete(rs.migrations, rec.SessionID)
		default:
			return fmt.Errorf("unknown migration phase %d", rec.Phase)
		}
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// appendTail applies a record's vertex tail to st and, while any
// subscription is live, records the append boundaries so the owner can
// re-derive the events the pre-crash node emitted for it.
func (rs *replayState) appendTail(st *store.Stream, rec Record) error {
	vs := tailAfter(st, rec.Vertices)
	if len(vs) == 0 {
		return nil
	}
	from := len(st.Seq())
	if err := st.Append(vs...); err != nil {
		return err
	}
	if len(rs.subs) > 0 {
		rs.subOps = append(rs.subOps, SubReplayOp{
			PatientID: rec.PatientID,
			SessionID: rec.SessionID,
			From:      from,
			To:        from + len(vs),
		})
	}
	return nil
}

// tailAfter drops the prefix of vs already present in the stream
// (vertices at or before the stream's last time), so replays that
// overlap existing state stay idempotent. The kept tail aliases vs.
func tailAfter(st *store.Stream, vs []plr.Vertex) []plr.Vertex {
	seq := st.Seq()
	if len(seq) == 0 {
		return vs
	}
	lastT := seq[len(seq)-1].T
	keep := vs[:0]
	for _, v := range vs {
		if v.T > lastT {
			keep = append(keep, v)
		}
	}
	return keep
}

// removeTempFiles clears half-written snapshot temp files left by a
// crash mid-snapshot (the rename never happened, so they are garbage).
func removeTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".tmp" {
			os.Remove(filepath.Join(dir, e.Name())) //nolint:errcheck
		}
	}
}
