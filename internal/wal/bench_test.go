package wal

import (
	"testing"

	"stsmatch/internal/plr"
)

// benchRecord is a representative hot-path record: a vertex-append of
// one segment boundary (1-D position) as the server emits at ~1 Hz per
// session, amortized over many sessions.
func benchRecord(i int) Record {
	return Record{
		Type:      TypeVertexAppend,
		PatientID: "P01",
		SessionID: "S01",
		Vertices: plr.Sequence{{
			T:     float64(i),
			Pos:   []float64{12.5},
			State: plr.State(uint8(i) % 3),
		}},
	}
}

// BenchmarkWALAppend measures the buffered (group-commit) append path
// the ingestion hot loop pays per mutation.
func BenchmarkWALAppend(b *testing.B) {
	l, _, err := Open(Options{Dir: b.TempDir(), FsyncInterval: 1e9}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendSync measures the fully synchronous path
// (FsyncInterval 0): one fsync per append, the durability ceiling.
func BenchmarkWALAppendSync(b *testing.B) {
	l, _, err := Open(Options{Dir: b.TempDir()}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecovery measures a full Open (snapshot scan + replay of
// 10k records) against a prebuilt log directory.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(Options{Dir: dir, FsyncInterval: 1e9}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const records = 10_000
	for i := 0; i < records; i++ {
		if err := l.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, res, err := Open(Options{Dir: dir, FsyncInterval: 1e9}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.RecordsReplayed != records {
			b.Fatalf("replayed %d records, want %d", res.RecordsReplayed, records)
		}
		l.Close()
	}
}
