package subscribe

import (
	"context"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/plr"
	"stsmatch/internal/store"
	"stsmatch/internal/wal"
)

// mkSeq builds a congruent-by-construction sequence: states cycle
// EX/EOE/IN and positions repeat every cycle, so any window aligned on
// a cycle boundary is an exact-shape match for any other.
func mkSeq(t0 float64, n int) plr.Sequence {
	states := []plr.State{plr.EX, plr.EOE, plr.IN}
	seq := make(plr.Sequence, n)
	for i := range seq {
		seq[i] = plr.Vertex{
			T:     t0 + float64(i),
			Pos:   []float64{float64(i%3) * 0.5},
			State: states[i%3],
		}
	}
	return seq
}

func testDB(t *testing.T) (*store.DB, *store.Stream) {
	t.Helper()
	db := store.NewDB()
	p, err := db.AddPatient(store.PatientInfo{ID: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S1")
	if err := st.Append(mkSeq(0, 6)...); err != nil {
		t.Fatal(err)
	}
	return db, st
}

func testManager(db *store.DB) *Manager {
	p := core.DefaultParams()
	p.RequireStateOrder = true
	p.DistThreshold = 1e9 // shape filter via states; accept any distance
	m := NewManager(p, 0)
	m.SetClock(func() float64 { return 1000 })
	if db != nil {
		db.AddMutationHook(m.OnMutation)
	}
	return m
}

// TestBaselineAndIncrementalEval: registration captures the current
// stream length as the baseline (no retro-matching); only windows
// closed by later appends produce events, with monotonically
// increasing sequence numbers.
func TestBaselineAndIncrementalEval(t *testing.T) {
	db, st := testDB(t)
	m := testManager(db)
	sub := wal.SubState{ID: "s1", PatientID: "P1", Pattern: mkSeq(0, 3)}
	if _, err := m.Register(&sub, db); err != nil {
		t.Fatal(err)
	}
	if len(sub.Cursors) != 1 || sub.Cursors[0].Len != 6 {
		t.Fatalf("baseline cursors = %+v, want [{P1 S1 6}]", sub.Cursors)
	}

	// Nothing pending yet: the existing 6 vertices are pre-baseline.
	if n := m.Drain(context.Background(), db); n != 0 {
		t.Fatalf("drain before any append emitted %d events", n)
	}

	// Append one full cycle: windows ending at 6, 7, 8 close; only the
	// window starting at 6 is state-congruent with the pattern.
	if err := st.Append(mkSeq(6, 3)...); err != nil {
		t.Fatal(err)
	}
	if n := m.Drain(context.Background(), db); n != 1 {
		t.Fatalf("drain emitted %d events, want 1", n)
	}
	events, wait, ok := m.Read("s1", 0)
	if !ok || len(events) != 1 {
		t.Fatalf("read: ok=%v events=%+v", ok, events)
	}
	e := events[0]
	if e.Seq != 1 || e.Start != 6 || e.N != 3 || e.PatientID != "P1" || e.SessionID != "S1" {
		t.Errorf("event = %+v, want seq 1 start 6 n 3", e)
	}
	if core.SourceRelation(e.Relation) != core.SamePatient {
		t.Errorf("relation = %v, want same-patient", core.SourceRelation(e.Relation))
	}
	if e.EndT != 8 {
		t.Errorf("endT = %v, want 8", e.EndT)
	}

	// The notify channel fires on the next event.
	select {
	case <-wait:
		t.Fatal("notify channel closed before any new event")
	default:
	}
	if err := st.Append(mkSeq(9, 3)...); err != nil {
		t.Fatal(err)
	}
	m.Drain(context.Background(), db)
	select {
	case <-wait:
	default:
		t.Fatal("notify channel not closed after new event")
	}
	events, _, _ = m.Read("s1", 1)
	if len(events) != 1 || events[0].Seq != 2 || events[0].Start != 9 {
		t.Fatalf("resume after seq 1: %+v, want one event seq 2 start 9", events)
	}

	// Ack trims the buffer and advances the durable high-water mark.
	if !m.Ack("s1", 1) {
		t.Fatal("ack on live subscription failed")
	}
	events, _, _ = m.Read("s1", 0)
	if len(events) != 1 || events[0].Seq != 2 {
		t.Fatalf("post-ack buffer = %+v, want only seq 2", events)
	}
	st2, _ := m.State("s1")
	if st2.Delivered != 1 || st2.NextSeq != 3 {
		t.Errorf("durable state delivered=%d nextSeq=%d, want 1/3", st2.Delivered, st2.NextSeq)
	}

	if !m.Delete("s1") {
		t.Fatal("delete failed")
	}
	if _, _, ok := m.Read("s1", 0); ok {
		t.Error("read succeeded after delete")
	}
}

// TestScopeFiltering: a session-scoped subscription only sees its own
// stream's appends; same-session self-exclusion still applies, so the
// pattern is timestamped far in the future.
func TestScopeFiltering(t *testing.T) {
	db, st1 := testDB(t)
	st2 := db.Patient("P1").AddStream("S2")
	if err := st2.Append(mkSeq(0, 6)...); err != nil {
		t.Fatal(err)
	}
	m := testManager(db)
	sub := wal.SubState{ID: "scoped", PatientID: "P1", SessionID: "S1", Pattern: mkSeq(1e6, 3)}
	if _, err := m.Register(&sub, db); err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(mkSeq(6, 3)...); err != nil {
		t.Fatal(err)
	}
	if n := m.Drain(context.Background(), db); n != 0 {
		t.Fatalf("out-of-scope append emitted %d events", n)
	}
	if err := st1.Append(mkSeq(6, 3)...); err != nil {
		t.Fatal(err)
	}
	if n := m.Drain(context.Background(), db); n != 1 {
		t.Fatalf("in-scope append emitted %d events, want 1", n)
	}
}

// TestBufferOverflowDropsOldest: a consumer further behind than the
// buffer cap loses the oldest events, and the loss is counted.
func TestBufferOverflowDropsOldest(t *testing.T) {
	db, st := testDB(t)
	p := core.DefaultParams()
	p.DistThreshold = 1e9
	m := NewManager(p, 2)
	m.SetClock(func() float64 { return 1000 })
	db.AddMutationHook(m.OnMutation)
	sub := wal.SubState{ID: "s1", PatientID: "P1", Pattern: mkSeq(0, 3)}
	if _, err := m.Register(&sub, db); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(mkSeq(float64(6+3*i), 3)...); err != nil {
			t.Fatal(err)
		}
		m.Drain(context.Background(), db)
	}
	events, _, _ := m.Read("s1", 0)
	if len(events) != 2 || events[0].Seq != 2 || events[1].Seq != 3 {
		t.Fatalf("buffered events = %+v, want seqs 2,3", events)
	}
	status, ok := m.Get("s1")
	if !ok || status.Dropped != 1 || status.Buffered != 2 {
		t.Fatalf("status = %+v, want dropped 1 buffered 2", status)
	}
}

// TestKModeCapsPerEvaluation: K limits each incremental evaluation to
// the k best new matches.
func TestKModeCapsPerEvaluation(t *testing.T) {
	db, st := testDB(t)
	m := testManager(db)
	sub := wal.SubState{ID: "k1", PatientID: "P1", K: 1, Pattern: mkSeq(0, 3)}
	if _, err := m.Register(&sub, db); err != nil {
		t.Fatal(err)
	}
	// Two full cycles in one batch: two congruent windows close in a
	// single evaluation; K=1 keeps only the best.
	if err := st.Append(mkSeq(6, 6)...); err != nil {
		t.Fatal(err)
	}
	if n := m.Drain(context.Background(), db); n != 1 {
		t.Fatalf("k=1 evaluation emitted %d events", n)
	}
}

// TestStateRoundTripRearms: a state exported by States() re-arms on a
// fresh manager with cursors, sequence numbers, and buffered events
// intact — the recovery and replication path.
func TestStateRoundTripRearms(t *testing.T) {
	db, st := testDB(t)
	m := testManager(db)
	sub := wal.SubState{ID: "s1", PatientID: "P1", Pattern: mkSeq(0, 3)}
	if _, err := m.Register(&sub, db); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(mkSeq(6, 3)...); err != nil {
		t.Fatal(err)
	}
	m.Drain(context.Background(), db)

	states := m.States()
	if len(states) != 1 {
		t.Fatalf("States() = %d entries", len(states))
	}
	m2 := testManager(nil)
	if _, err := m2.Register(&states[0], nil); err != nil {
		t.Fatal(err)
	}
	events, _, ok := m2.Read("s1", 0)
	if !ok || len(events) != 1 || events[0].Seq != 1 {
		t.Fatalf("re-armed buffer = %+v", events)
	}
	// The cursor survived: re-evaluating the same boundary is a no-op,
	// so no duplicate events are derived.
	if n := m2.EvalStream(context.Background(), db, "P1", "S1", uint64(st.Len())); n != 0 {
		t.Fatalf("re-evaluation at the recovered cursor emitted %d events", n)
	}
	st2, _ := m2.State("s1")
	if st2.NextSeq != 2 {
		t.Errorf("re-armed nextSeq = %d, want 2", st2.NextSeq)
	}
}
