package subscribe

import "stsmatch/internal/obs"

// Subscription metrics, registered on the default registry. The eval
// counter increments once per incremental evaluation (one
// subscription × one stream delta), matching the subscribe.eval span
// cardinality, so traced funnel counts reconcile with metric deltas.
var (
	mActive = obs.Default().Gauge("stsmatch_sub_active",
		"Standing subscriptions currently registered.")
	mEvals = obs.Default().Counter("stsmatch_sub_eval_total",
		"Incremental standing-query evaluations run (per subscription per stream delta).")
	mDelivered = obs.Default().Counter("stsmatch_sub_events_delivered_total",
		"Subscription match events written to consumer streams.")
)
