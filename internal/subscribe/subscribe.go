// Package subscribe implements standing queries: patterns registered
// once and evaluated incrementally as vertices arrive, instead of
// re-scanning the corpus per poll. A Manager multiplexes every
// registered subscription over the store mutation-hook path the WAL
// and signature index already ride — the hook only buffers (it runs
// under the mutated stream's write lock), and the server drains the
// buffer under its session lock right after each ingest batch, so
// evaluation order is exactly WAL order and recovery can re-derive
// the event stream deterministically.
package subscribe

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/obs"
	"stsmatch/internal/store"
	"stsmatch/internal/wal"
)

// DefaultBuffer is the default per-subscription undelivered-event
// buffer capacity.
const DefaultBuffer = 4096

// Manager owns every standing subscription on one node. All mutating
// entry points are safe for concurrent use; evaluation itself
// (Drain, Replay) is additionally serialized by the server's session
// lock, which is what makes event derivation deterministic.
type Manager struct {
	params core.Params
	bufCap int
	now    func() float64 // wall clock, unix seconds (injectable in tests)

	mu    sync.Mutex
	subs  map[string]*Subscription
	order []string // registration order (evaluation order per delta)

	// pending buffers stream deltas noted by the mutation hook, which
	// runs under the mutated stream's write lock and therefore cannot
	// evaluate (evaluation reads the stream). Drain consumes it.
	pmu     sync.Mutex
	pending []delta
}

type delta struct {
	patientID string
	sessionID string
}

// Subscription is one registered standing query plus its evaluation
// state. All fields are guarded by the owning Manager's mu.
type Subscription struct {
	state   wal.SubState // durable view; Cursors materialized on demand
	sq      *core.StandingQuery
	cursors map[string]uint64 // stream key -> evaluated length

	evals     uint64 // incremental evaluations run
	delivered uint64 // events written to consumers (counter, not hwm)
	dropped   uint64 // undelivered events evicted by the buffer cap
	counts    core.StandingCounts
	notify    chan struct{} // closed and replaced when events arrive
}

// NewManager creates a manager evaluating with the given matcher
// params. bufCap caps each subscription's undelivered-event buffer
// (<= 0 selects DefaultBuffer); when a consumer falls further behind
// than the cap, the oldest unacknowledged events are evicted (counted
// in the list API as dropped).
func NewManager(p core.Params, bufCap int) *Manager {
	if bufCap <= 0 {
		bufCap = DefaultBuffer
	}
	m := &Manager{
		params: p,
		bufCap: bufCap,
		now:    func() float64 { return float64(time.Now().UnixNano()) / 1e9 },
		subs:   make(map[string]*Subscription),
	}
	// Scrape-time lag: newest manager wins the registration, which is
	// the live server in a process (tests start several).
	obs.Default().GaugeFunc("stsmatch_sub_delivery_lag_seconds",
		"Age of the oldest undelivered subscription event.", m.lag)
	return m
}

// lag computes the delivery-lag gauge at scrape time.
func (m *Manager) lag() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var oldest float64
	now := m.now()
	for _, s := range m.subs {
		if len(s.state.Events) > 0 {
			if l := now - s.state.Events[0].At; l > oldest {
				oldest = l
			}
		}
	}
	return oldest
}

// SetClock replaces the wall-clock source (tests).
func (m *Manager) SetClock(now func() float64) { m.now = now }

func streamKey(patientID, sessionID string) string {
	return patientID + "\x00" + sessionID
}

func splitKey(k string) (patientID, sessionID string) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:]
		}
	}
	return k, ""
}

// Register validates and installs a subscription from its durable
// state, replacing any existing subscription with the same ID (the
// re-arm path: replication and recovery replay upserts). The state's
// Threshold is normalized to the effective value so the caller
// journals exactly what will be evaluated. When db is non-nil and the
// state carries no cursors, the current lengths of every in-scope
// stream are captured as the registration baseline: standing queries
// match forward from registration, never retroactively. Streams that
// appear later default to cursor 0, which is the correct baseline for
// them (all their windows are new).
func (m *Manager) Register(st *wal.SubState, db *store.DB) (*Subscription, error) {
	if st.ID == "" {
		return nil, fmt.Errorf("subscribe: subscription needs an id")
	}
	q := core.Query{Seq: st.Pattern, PatientID: st.PatientID, SessionID: st.SessionID}
	sq, err := core.NewStandingQuery(m.params, q, st.Threshold, int(st.K))
	if err != nil {
		return nil, err
	}
	st.Threshold = sq.Threshold()
	if st.NextSeq == 0 {
		st.NextSeq = 1
	}
	if st.Cursors == nil && db != nil {
		st.Cursors = m.baselines(st, db)
	}
	s := &Subscription{
		state:   *st,
		sq:      sq,
		cursors: make(map[string]uint64, len(st.Cursors)),
		notify:  make(chan struct{}),
	}
	for _, c := range st.Cursors {
		s.cursors[streamKey(c.PatientID, c.SessionID)] = c.Len
	}
	// The events kept in durable state are the undelivered buffer.
	s.state.Events = append([]wal.SubEvent(nil), st.Events...)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.subs[st.ID]; !ok {
		m.order = append(m.order, st.ID)
		mActive.Inc()
	}
	m.subs[st.ID] = s
	return s, nil
}

// baselines captures the current length of every stream in the
// subscription's scope.
func (m *Manager) baselines(st *wal.SubState, db *store.DB) []wal.SubCursor {
	cursors := []wal.SubCursor{} // non-nil: baseline captured, possibly empty
	for _, p := range db.Patients() {
		if st.PatientID != "" && st.PatientID != p.Info.ID {
			continue
		}
		for _, sess := range p.Streams {
			if st.SessionID != "" && st.SessionID != sess.SessionID {
				continue
			}
			if n := sess.Len(); n > 0 {
				cursors = append(cursors, wal.SubCursor{
					PatientID: sess.PatientID,
					SessionID: sess.SessionID,
					Len:       uint64(n),
				})
			}
		}
	}
	return cursors
}

// Delete removes a subscription. It reports whether it existed.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.subs[id]; !ok {
		return false
	}
	delete(m.subs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	mActive.Dec()
	return true
}

// Expel removes a subscription locally AND wakes any consumer stream
// blocked on its notify channel, so attached readers disconnect
// immediately instead of waiting out a heartbeat. This is the
// migration-handoff path, not a consumer-visible deletion: the
// subscription lives on at the session's new home (it was shipped
// inside the catch-up snapshot), and a woken gateway proxy re-resolves
// the placement and resumes the stream there from its Last-Event-ID.
func (m *Manager) Expel(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return false
	}
	delete(m.subs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	close(s.notify)
	mActive.Dec()
	return true
}

// Ack advances a subscription's delivery high-water mark and drops
// acknowledged events from the buffer. It reports whether the
// subscription exists.
func (m *Manager) Ack(id string, seq uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return false
	}
	if seq > s.state.Delivered {
		s.state.Delivered = seq
		i := 0
		for i < len(s.state.Events) && s.state.Events[i].Seq <= seq {
			i++
		}
		s.state.Events = append(s.state.Events[:0], s.state.Events[i:]...)
	}
	return true
}

// NoteDelivered counts events written to a consumer stream (the
// observability counter, distinct from the durable acked hwm).
func (m *Manager) NoteDelivered(id string, n int) {
	if n <= 0 {
		return
	}
	mDelivered.Add(n)
	m.mu.Lock()
	if s, ok := m.subs[id]; ok {
		s.delivered += uint64(n)
	}
	m.mu.Unlock()
}

// OnMutation is the store mutation hook: it runs under the mutated
// stream's write lock, so it only buffers the delta for Drain.
func (m *Manager) OnMutation(mut store.Mutation) {
	if mut.Kind != store.MutVertexAppend || len(mut.Vertices) == 0 {
		return
	}
	m.pmu.Lock()
	if n := len(m.pending); n > 0 &&
		m.pending[n-1].patientID == mut.PatientID &&
		m.pending[n-1].sessionID == mut.SessionID {
		m.pmu.Unlock() // coalesce consecutive appends to one stream
		return
	}
	m.pending = append(m.pending, delta{patientID: mut.PatientID, sessionID: mut.SessionID})
	m.pmu.Unlock()
}

// Drain evaluates every buffered stream delta against every in-scope
// subscription, in registration order, up to each stream's current
// length. The caller must hold the server's session lock so that
// evaluation order equals WAL append order. It returns the number of
// events emitted.
func (m *Manager) Drain(ctx context.Context, db *store.DB) int {
	m.pmu.Lock()
	deltas := m.pending
	m.pending = nil
	m.pmu.Unlock()
	if len(deltas) == 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.subs) == 0 {
		return 0
	}
	emitted := 0
	for _, d := range deltas {
		p := db.Patient(d.patientID)
		if p == nil {
			continue
		}
		st := p.StreamBySession(d.sessionID)
		if st == nil {
			continue
		}
		emitted += m.evalStreamLocked(ctx, st, uint64(st.Len()))
	}
	return emitted
}

// EvalStream evaluates one stream against every in-scope subscription
// up to the given length (the replication and recovery-replay entry
// point, where the caller knows the exact boundary the events must be
// derived at). The caller must hold the server's session lock.
func (m *Manager) EvalStream(ctx context.Context, db *store.DB, patientID, sessionID string, to uint64) int {
	p := db.Patient(patientID)
	if p == nil {
		return 0
	}
	st := p.StreamBySession(sessionID)
	if st == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evalStreamLocked(ctx, st, to)
}

// evalStreamLocked runs each in-scope subscription's incremental
// evaluation over the windows of st ending in [cursor, to).
func (m *Manager) evalStreamLocked(ctx context.Context, st *store.Stream, to uint64) int {
	emitted := 0
	for _, id := range m.order {
		s := m.subs[id]
		if !s.inScope(st.PatientID, st.SessionID) {
			continue
		}
		key := streamKey(st.PatientID, st.SessionID)
		from := s.cursors[key]
		if from >= to {
			continue
		}
		start := time.Now()
		matches, counts, err := s.sq.EvalRange(st, int(from), int(to))
		s.cursors[key] = to
		s.evals++
		s.counts.Add(counts)
		mEvals.Inc()
		if err != nil {
			// Unreachable with state-order filtering on; advance the
			// cursor anyway so a poisoned window cannot wedge the
			// subscription.
			obs.AddSpan(ctx, "subscribe.eval", start, time.Since(start),
				map[string]any{"sub": id, "error": err.Error()})
			continue
		}
		now := m.now()
		for _, mt := range matches {
			seq := mt.Stream.Seq()
			e := wal.SubEvent{
				Seq:       s.state.NextSeq,
				PatientID: mt.Stream.PatientID,
				SessionID: mt.Stream.SessionID,
				Start:     uint32(mt.Start),
				N:         uint32(mt.N),
				Relation:  uint8(mt.Relation),
				Distance:  mt.Distance,
				Weight:    mt.Weight,
				EndT:      seq[mt.Start+mt.N-1].T,
				At:        now,
			}
			s.state.NextSeq++
			s.state.Events = append(s.state.Events, e)
			emitted++
		}
		if over := len(s.state.Events) - m.bufCap; over > 0 {
			s.dropped += uint64(over)
			s.state.Events = append(s.state.Events[:0], s.state.Events[over:]...)
		}
		if len(matches) > 0 {
			close(s.notify)
			s.notify = make(chan struct{})
		}
		obs.AddSpan(ctx, "subscribe.eval", start, time.Since(start), map[string]any{
			"sub":           id,
			"patient":       st.PatientID,
			"session":       st.SessionID,
			"from":          from,
			"to":            to,
			"candidates":    counts.Candidates,
			"state_reject":  counts.StateRejected,
			"self_excluded": counts.SelfExcluded,
			"lb_pruned":     counts.LBPruned,
			"dist_rejected": counts.DistRejected,
			"matched":       counts.Matched,
		})
	}
	return emitted
}

func (s *Subscription) inScope(patientID, sessionID string) bool {
	return (s.state.PatientID == "" || s.state.PatientID == patientID) &&
		(s.state.SessionID == "" || s.state.SessionID == sessionID)
}

// Read returns a copy of the buffered events with Seq > after, plus a
// channel that is closed the next time any event is appended (so a
// caller seeing no events can wait without polling). ok is false when
// the subscription does not exist.
func (m *Manager) Read(id string, after uint64) (events []wal.SubEvent, wait <-chan struct{}, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, okk := m.subs[id]
	if !okk {
		return nil, nil, false
	}
	i := 0
	for i < len(s.state.Events) && s.state.Events[i].Seq <= after {
		i++
	}
	if i < len(s.state.Events) {
		events = append([]wal.SubEvent(nil), s.state.Events[i:]...)
	}
	return events, s.notify, true
}

// Status is one subscription's listing view.
type Status struct {
	ID        string  `json:"id"`
	PatientID string  `json:"patientId,omitempty"`
	SessionID string  `json:"sessionId,omitempty"`
	Threshold float64 `json:"threshold"`
	K         int     `json:"k,omitempty"`
	PatternN  int     `json:"patternN"`

	Evals      uint64 `json:"evals"`
	Candidates int    `json:"candidates"`
	Matched    int    `json:"matched"`
	NextSeq    uint64 `json:"nextSeq"`
	Delivered  uint64 `json:"deliveredSeq"`
	Sent       uint64 `json:"eventsSent"`
	Buffered   int    `json:"eventsBuffered"`
	Dropped    uint64 `json:"eventsDropped,omitempty"`
}

// List returns every subscription's status, in registration order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.order))
	for _, id := range m.order {
		s := m.subs[id]
		out = append(out, Status{
			ID:        s.state.ID,
			PatientID: s.state.PatientID,
			SessionID: s.state.SessionID,
			Threshold: s.state.Threshold,
			K:         int(s.state.K),
			PatternN:  len(s.state.Pattern),

			Evals:      s.evals,
			Candidates: s.counts.Candidates,
			Matched:    s.counts.Matched,
			NextSeq:    s.state.NextSeq,
			Delivered:  s.state.Delivered,
			Sent:       s.delivered,
			Buffered:   len(s.state.Events),
			Dropped:    s.dropped,
		})
	}
	return out
}

// Get returns one subscription's status.
func (m *Manager) Get(id string) (Status, bool) {
	for _, st := range m.List() {
		if st.ID == id {
			return st, true
		}
	}
	return Status{}, false
}

// States returns the full durable state of every subscription, in
// registration order: the WAL snapshot section and the replication
// catch-up payload.
func (m *Manager) States() []wal.SubState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wal.SubState, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.subs[id].stateLocked())
	}
	return out
}

// StatesInScope returns the durable state of every subscription whose
// scope covers the given stream, in registration order — the records a
// primary ships so a follower re-arms them (snapshot catch-up path).
func (m *Manager) StatesInScope(patientID, sessionID string) []wal.SubState {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []wal.SubState
	for _, id := range m.order {
		if s := m.subs[id]; s.inScope(patientID, sessionID) {
			out = append(out, s.stateLocked())
		}
	}
	return out
}

// IDsInScope returns the IDs of every subscription covering the given
// stream, in registration order.
func (m *Manager) IDsInScope(patientID, sessionID string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, id := range m.order {
		if m.subs[id].inScope(patientID, sessionID) {
			out = append(out, id)
		}
	}
	return out
}

// Has reports whether a subscription with the given ID exists.
func (m *Manager) Has(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.subs[id]
	return ok
}

// State returns one subscription's durable state.
func (m *Manager) State(id string) (wal.SubState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return wal.SubState{}, false
	}
	return s.stateLocked(), true
}

func (s *Subscription) stateLocked() wal.SubState {
	st := s.state
	st.Cursors = make([]wal.SubCursor, 0, len(s.cursors))
	for k, v := range s.cursors {
		pid, sid := splitKey(k)
		st.Cursors = append(st.Cursors, wal.SubCursor{PatientID: pid, SessionID: sid, Len: v})
	}
	sort.Slice(st.Cursors, func(a, b int) bool {
		if st.Cursors[a].PatientID != st.Cursors[b].PatientID {
			return st.Cursors[a].PatientID < st.Cursors[b].PatientID
		}
		return st.Cursors[a].SessionID < st.Cursors[b].SessionID
	})
	st.Events = append([]wal.SubEvent(nil), s.state.Events...)
	return st
}

// Health is the healthz view of the subsystem.
type Health struct {
	Count     int     `json:"count"`
	Buffered  int     `json:"eventsBuffered"`
	OldestLag float64 `json:"oldestCursorLagSeconds"`
}

// Health reports the active subscription count, total buffered
// undelivered events, and the age of the oldest undelivered event.
func (m *Manager) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{Count: len(m.subs)}
	now := m.now()
	for _, s := range m.subs {
		h.Buffered += len(s.state.Events)
		if len(s.state.Events) > 0 {
			if lag := now - s.state.Events[0].At; lag > h.OldestLag {
				h.OldestLag = lag
			}
		}
	}
	return h
}
