module stsmatch

go 1.22
