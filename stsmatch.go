// Package stsmatch is the public API of the structured-time-series
// subsequence matching library, a from-scratch reproduction of
//
//	Wu, Salzberg, Sharp, Jiang, Shirato, Kaeli:
//	"Subsequence Matching on Structured Time Series Data", SIGMOD 2005.
//
// The library models time series whose internal structure is described
// by a finite set of linear states (the paper's driving example is
// tumor respiratory motion in image-guided radiotherapy):
//
//   - raw samples are segmented online into a piecewise linear
//     representation (PLR) guided by a finite state automaton
//     (EX / EOE / IN / IRR);
//   - PLR streams live in a hierarchical database
//     (database -> patients -> session streams -> vertices);
//   - query subsequences are generated dynamically from the most
//     recent motion using subsequence stability;
//   - retrieval uses a model-based, multi-layer, weighted, parametric
//     distance (same state order required; amplitude, frequency,
//     recency and source-stream weights);
//   - retrieved matches drive online position prediction and offline
//     stream/patient similarity, clustering and correlation discovery.
//
// Quick start:
//
//	seg, _ := stsmatch.NewSegmenter(stsmatch.DefaultSegmenterConfig())
//	for _, s := range samples {
//		vs, _ := seg.Push(s)
//		_ = stream.Append(vs...)
//	}
//	matcher, _ := stsmatch.NewMatcher(db, stsmatch.DefaultParams())
//	query, _ := matcher.Params.DynamicQuery(stream.Seq())
//	pred, _ := matcher.Predict(stsmatch.NewQuery(query, "P01", "P01-S01"), 0.2, nil)
//
// See examples/ for complete programs and DESIGN.md for the mapping
// from the paper's definitions to this implementation.
package stsmatch

import (
	"stsmatch/internal/cluster"
	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// Core time-series types (see internal/plr).
type (
	// State is a finite-state-model state (EX, EOE, IN, IRR).
	State = plr.State
	// Vertex is one PLR vertex: time, n-D position and segment state.
	Vertex = plr.Vertex
	// Sequence is an ordered list of PLR vertices.
	Sequence = plr.Sequence
	// Sample is one raw observation (time + n-D position).
	Sample = plr.Sample
	// Segment is the geometric description of one PLR line segment.
	Segment = plr.Segment
)

// The four motion states.
const (
	EX  = plr.EX
	EOE = plr.EOE
	IN  = plr.IN
	IRR = plr.IRR
)

// Segmentation (see internal/fsm).
type (
	// Segmenter converts raw samples into PLR vertices online.
	Segmenter = fsm.Segmenter
	// SegmenterConfig tunes the online segmenter.
	SegmenterConfig = fsm.Config
)

// NewSegmenter builds an online segmenter.
func NewSegmenter(cfg SegmenterConfig) (*Segmenter, error) { return fsm.New(cfg) }

// DefaultSegmenterConfig returns the 30 Hz respiratory defaults.
func DefaultSegmenterConfig() SegmenterConfig { return fsm.DefaultConfig() }

// SegmentAll runs a whole sample slice through a fresh segmenter.
func SegmentAll(cfg SegmenterConfig, samples []Sample) (Sequence, error) {
	return fsm.SegmentAll(cfg, samples)
}

// Storage (see internal/store).
type (
	// DB is the hierarchical stream database.
	DB = store.DB
	// Patient is one patient record.
	Patient = store.Patient
	// PatientInfo is patient metadata.
	PatientInfo = store.PatientInfo
	// Stream is one session's PLR stream.
	Stream = store.Stream
)

// NewDB creates an empty stream database.
func NewDB() *DB { return store.NewDB() }

// Matching, stability and prediction (see internal/core).
type (
	// Params holds every tunable of the similarity measure (Table 1).
	Params = core.Params
	// Query is a query subsequence with provenance.
	Query = core.Query
	// Match is one retrieved similar subsequence.
	Match = core.Match
	// Matcher runs similarity search and prediction over a DB.
	Matcher = core.Matcher
	// Prediction is a predicted future position.
	Prediction = core.Prediction
	// QueryInfo reports how a dynamic query was chosen.
	QueryInfo = core.QueryInfo
	// SourceRelation classifies candidate provenance.
	SourceRelation = core.SourceRelation
	// EvalOptions & EvalResult drive prediction-quality evaluation.
	EvalOptions = core.EvalOptions
	// EvalResult aggregates an evaluation sweep.
	EvalResult = core.EvalResult
)

// The three source relations, most to least trusted.
const (
	SameSession  = core.SameSession
	SamePatient  = core.SamePatient
	OtherPatient = core.OtherPatient
)

// DefaultParams returns the Table 1 parameter settings.
func DefaultParams() Params { return core.DefaultParams() }

// NewMatcher builds a matcher over the database.
func NewMatcher(db *DB, p Params) (*Matcher, error) { return core.NewMatcher(db, p) }

// NewQuery builds a query from the trailing subsequence of a stream.
func NewQuery(seq Sequence, patientID, sessionID string) Query {
	return core.NewQuery(seq, patientID, sessionID)
}

// FixedQuery returns the most recent fixed-length window (the baseline
// strategy Figure 7a compares against dynamic generation).
func FixedQuery(seq Sequence, cycles int) Sequence { return core.FixedQuery(seq, cycles) }

// Offline analysis (see internal/cluster).
type (
	// ClusterConfig controls offline stream/patient distances.
	ClusterConfig = cluster.Config
	// Clustering is a clustering result.
	Clustering = cluster.Clustering
)

// DefaultClusterConfig returns the offline-analysis defaults.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// StreamDistance computes the symmetric Definition 3 distance.
func StreamDistance(r, s *Stream, cfg ClusterConfig) (float64, error) {
	return cluster.StreamDistance(r, s, cfg)
}

// PatientDistance computes the Definition 4 distance.
func PatientDistance(p1, p2 *Patient, cfg ClusterConfig) (float64, error) {
	return cluster.PatientDistance(p1, p2, cfg)
}

// ClusterPatients computes the patient distance matrix and clusters it
// into k groups with k-medoids, returning the clustering in patient
// order.
func ClusterPatients(db *DB, cfg ClusterConfig, k int, seed int64) (Clustering, error) {
	m, err := cluster.PatientDistanceMatrix(db.Patients(), cfg)
	if err != nil {
		return Clustering{}, err
	}
	return cluster.KMedoids(m, k, seed)
}
