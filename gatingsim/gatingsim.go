// Package gatingsim exposes the clinical delivery simulators built on
// the motion library: respiration-gated treatment and beam tracking
// under system latency (the paper's Figure 1 scenario). It is the
// public face of internal/gating; see examples/gating for a complete
// program that closes the loop with online prediction.
package gatingsim

import (
	"stsmatch/internal/gating"
	"stsmatch/internal/plr"
)

// Re-exported simulator types; see internal/gating for field details.
type (
	// Window is a gating window on the primary motion axis.
	Window = gating.Window
	// Positioner supplies position estimates for the beam decision.
	Positioner = gating.Positioner
	// PositionerFunc adapts a function to Positioner.
	PositionerFunc = gating.PositionerFunc
	// GatingResult scores a gated delivery.
	GatingResult = gating.GatingResult
	// TrackingResult scores a beam-tracking delivery.
	TrackingResult = gating.TrackingResult
)

// SimulateGating replays true motion against a gated delivery.
func SimulateGating(truth []plr.Sample, w Window, pos Positioner, dim int) (GatingResult, error) {
	return gating.SimulateGating(truth, w, pos, dim)
}

// SimulateTracking replays true motion against a tracking delivery.
func SimulateTracking(truth []plr.Sample, pos Positioner, dim int) (TrackingResult, error) {
	return gating.SimulateTracking(truth, pos, dim)
}

// LastObservedPositioner acts on the position from latency seconds ago
// (the uncompensated "real treatment" of Figure 1).
func LastObservedPositioner(truth []plr.Sample, latency float64, dim int) Positioner {
	return gating.LastObservedPositioner(truth, latency, dim)
}

// OraclePositioner is the zero-latency ideal ("ideal treatment").
func OraclePositioner(truth []plr.Sample, dim int) Positioner {
	return gating.OraclePositioner(truth, dim)
}
