package stsmatch_test

// End-to-end tests of the command-line tools: build the binaries once
// and drive the documented pipeline (motiongen -> segmenter ->
// predictd -> clusterpat) on a temporary directory.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	toolsOnce sync.Once
	toolsDir  string
	toolsErr  error
)

// buildTools compiles the CLI binaries once per test binary.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("tool builds are slow for -short")
	}
	toolsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "stsmatch-tools-")
		if err != nil {
			toolsErr = err
			return
		}
		toolsDir = dir
		for _, tool := range []string{"motiongen", "segmenter", "predictd", "clusterpat"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				toolsErr = err
				t.Logf("building %s: %s", tool, out)
				return
			}
		}
	})
	if toolsErr != nil {
		t.Fatalf("building tools: %v", toolsErr)
	}
	return toolsDir
}

func runTool(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	bin := buildTools(t)
	work := t.TempDir()
	dbPath := filepath.Join(work, "cohort.json")
	binPath := filepath.Join(work, "cohort.bin")
	rawDir := filepath.Join(work, "raw")

	// 1. Generate a segmented cohort in both formats.
	out := runTool(t, bin, "motiongen",
		"-patients", "4", "-sessions", "2", "-dur", "45", "-o", dbPath)
	if !strings.Contains(out, "4 patients") {
		t.Errorf("motiongen output: %q", out)
	}
	runTool(t, bin, "motiongen",
		"-patients", "4", "-sessions", "2", "-dur", "45", "-o", binPath)
	ji, err := os.Stat(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := os.Stat(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Size() >= ji.Size() {
		t.Errorf("binary format (%d B) not smaller than JSON (%d B)", bi.Size(), ji.Size())
	}

	// 2. Raw export + streaming segmentation.
	runTool(t, bin, "motiongen", "-raw", "-dir", rawDir, "-patients", "2", "-sessions", "1", "-dur", "30")
	if _, err := os.Stat(filepath.Join(rawDir, "manifest.csv")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	plrOut := filepath.Join(work, "p01.plr.csv")
	segOut := runTool(t, bin, "segmenter",
		"-in", filepath.Join(rawDir, "P01-S01.csv"), "-out", plrOut)
	if !strings.Contains(segOut, "compression") {
		t.Errorf("segmenter output: %q", segOut)
	}
	plrData, err := os.ReadFile(plrOut)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(plrData), "\n"); lines < 5 {
		t.Errorf("PLR CSV has only %d lines", lines)
	}

	// 3. Online prediction replay on both database formats.
	for _, db := range []string{dbPath, binPath} {
		predOut := runTool(t, bin, "predictd", "-db", db, "-delta", "200ms", "-queries", "4")
		if !strings.Contains(predOut, "mean") || !strings.Contains(predOut, "coverage") {
			t.Errorf("predictd output for %s: %q", db, predOut)
		}
	}
	// Adaptive mode.
	adOut := runTool(t, bin, "predictd", "-db", dbPath, "-adapt", "0.8", "-queries", "4")
	if !strings.Contains(adOut, "epsilon settled") {
		t.Errorf("adaptive output: %q", adOut)
	}

	// 4. Offline clustering report.
	clOut := runTool(t, bin, "clusterpat", "-db", dbPath, "-stride", "6", "-dendrogram")
	for _, want := range []string{"k-medoids", "breathing class", "hierarchical"} {
		if !strings.Contains(clOut, want) {
			t.Errorf("clusterpat output missing %q:\n%s", want, clOut)
		}
	}
}

func TestCLIErrorHandling(t *testing.T) {
	bin := buildTools(t)
	// predictd on a missing database must fail with a nonzero exit.
	cmd := exec.Command(filepath.Join(bin, "predictd"), "-db", "/nonexistent.json")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("missing database accepted: %s", out)
	}
	// segmenter on malformed input must fail.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,numbers,at,all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(filepath.Join(bin, "segmenter"), "-in", bad)
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("malformed CSV accepted: %s", out)
	}
}
