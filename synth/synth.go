// Package synth exposes the synthetic structured-motion generators:
// respiratory motion with the artifact families of the paper's
// Figure 3 (amplitude/frequency drift, baseline shifts, cardiac and
// spike noise, irregular episodes), plus the Section 6 generalization
// signals (heartbeat, robot arm, tides) and whole-cohort generation.
//
// Downstream users of the library rarely have clinical tracking data;
// these generators produce statistically faithful substitutes and are
// what the examples, experiments and benchmarks run on.
package synth

import (
	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
)

// Sample is one raw observation (time + n-D position); identical to
// the root package's Sample.
type Sample = plr.Sample

// Re-exported generator types; see the corresponding internal/signal
// documentation for field details.
type (
	// RespirationConfig parameterizes one breathing signal.
	RespirationConfig = signal.RespirationConfig
	// Respiration generates breathing motion samples.
	Respiration = signal.Respiration
	// TimeRange is a half-open [Start, End) interval in seconds.
	TimeRange = signal.TimeRange
	// HeartbeatConfig parameterizes a pulse train.
	HeartbeatConfig = signal.HeartbeatConfig
	// Heartbeat generates arterial-pressure-like pulses.
	Heartbeat = signal.Heartbeat
	// RobotArmConfig parameterizes a pick-and-place axis.
	RobotArmConfig = signal.RobotArmConfig
	// RobotArm generates trapezoidal move/dwell motion.
	RobotArm = signal.RobotArm
	// TideConfig parameterizes a tide-height series.
	TideConfig = signal.TideConfig
	// CohortConfig controls synthetic cohort generation.
	CohortConfig = signal.CohortConfig
	// PatientProfile describes one synthetic patient.
	PatientProfile = signal.PatientProfile
	// PatientData bundles a profile with generated sessions.
	PatientData = signal.PatientData
	// SessionData is one session's raw motion stream.
	SessionData = signal.SessionData
	// BreathingClass labels a patient's breathing behaviour.
	BreathingClass = signal.BreathingClass
)

// The breathing classes of the synthetic cohort.
const (
	ClassCalm    = signal.ClassCalm
	ClassDeep    = signal.ClassDeep
	ClassRapid   = signal.ClassRapid
	ClassErratic = signal.ClassErratic
)

// DefaultRespiration returns a clinically plausible breathing
// configuration (15 mm SI motion at 30 Hz).
func DefaultRespiration() RespirationConfig { return signal.DefaultRespiration() }

// NewRespiration builds a seeded breathing generator.
func NewRespiration(cfg RespirationConfig, seed int64) (*Respiration, error) {
	return signal.NewRespiration(cfg, seed)
}

// DefaultHeartbeat returns a plausible resting pulse configuration.
func DefaultHeartbeat() HeartbeatConfig { return signal.DefaultHeartbeat() }

// NewHeartbeat builds a seeded pulse generator.
func NewHeartbeat(cfg HeartbeatConfig, seed int64) (*Heartbeat, error) {
	return signal.NewHeartbeat(cfg, seed)
}

// DefaultRobotArm returns a representative assembly-line axis.
func DefaultRobotArm() RobotArmConfig { return signal.DefaultRobotArm() }

// NewRobotArm builds a seeded robot-arm generator.
func NewRobotArm(cfg RobotArmConfig, seed int64) (*RobotArm, error) {
	return signal.NewRobotArm(cfg, seed)
}

// DefaultTide returns a representative coastal tide configuration.
func DefaultTide() TideConfig { return signal.DefaultTide() }

// GenerateTide produces duration seconds of tide heights.
func GenerateTide(cfg TideConfig, duration float64, seed int64) []Sample {
	return signal.GenerateTide(cfg, duration, seed)
}

// DefaultCohort returns the laptop-scale cohort configuration.
func DefaultCohort() CohortConfig { return signal.DefaultCohort() }

// GenerateCohort builds a full synthetic cohort deterministically.
func GenerateCohort(cfg CohortConfig) ([]PatientData, error) {
	return signal.GenerateCohort(cfg)
}
