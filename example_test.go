package stsmatch_test

// Runnable godoc examples for the public API. Outputs are verified by
// `go test`, so the documentation cannot rot. The examples use fixed
// seeds and print only values that are stable across platforms
// (counts, orderings, booleans).

import (
	"fmt"
	"log"

	"stsmatch"
	"stsmatch/gatingsim"
	"stsmatch/synth"
)

// Example shows the minimal end-to-end pipeline: generate motion,
// segment it online, and ask whether prediction is available.
func Example() {
	cfg := synth.DefaultRespiration()
	cfg.IrregularProb = 0 // keep the doc example fully regular
	gen, err := synth.NewRespiration(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	samples := gen.Generate(60)

	seq, err := stsmatch.SegmentAll(stsmatch.DefaultSegmenterConfig(), samples)
	if err != nil {
		log.Fatal(err)
	}

	db := stsmatch.NewDB()
	p, err := db.AddPatient(stsmatch.PatientInfo{ID: "P01"})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AddStream("S01").Append(seq...); err != nil {
		log.Fatal(err)
	}

	matcher, err := stsmatch.NewMatcher(db, stsmatch.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	qseq, _ := matcher.Params.DynamicQuery(seq[:len(seq)-2])
	q := stsmatch.NewQuery(qseq, "P01", "S01")
	matches, err := matcher.FindSimilar(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := matcher.PredictPosition(q, matches, 0.2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predicted dims:", len(pred.Pos))
	fmt.Println("used matches:", pred.NumMatches >= 3)
	// Output:
	// predicted dims: 1
	// used matches: true
}

// ExampleParams_DynamicQuery demonstrates stability-driven query
// generation: regular motion yields the minimum-length query.
func ExampleParams_DynamicQuery() {
	params := stsmatch.DefaultParams()
	// A perfectly regular PLR: EX -> EOE -> IN cycles, amplitude 10.
	var seq stsmatch.Sequence
	states := []stsmatch.State{stsmatch.EX, stsmatch.EOE, stsmatch.IN}
	ys := []float64{10, 0, 0}
	for i := 0; i < 40; i++ {
		seq = append(seq, stsmatch.Vertex{
			T: float64(i), Pos: []float64{ys[i%3]}, State: states[i%3],
		})
	}
	q, info := params.DynamicQuery(seq)
	fmt.Println("query vertices:", len(q))
	fmt.Println("minimum length:", params.MinQueryVertices())
	fmt.Println("stable:", info.Stable)
	// Output:
	// query vertices: 10
	// minimum length: 10
	// stable: true
}

// ExampleParams_Distance shows the state-order precondition of
// Definition 2: windows with different meanings are incomparable.
func ExampleParams_Distance() {
	params := stsmatch.DefaultParams()
	mk := func(first stsmatch.State) stsmatch.Sequence {
		states := []stsmatch.State{stsmatch.EX, stsmatch.EOE, stsmatch.IN}
		// Rotate so the window starts with the requested state.
		for states[0] != first {
			states = append(states[1:], states[0])
		}
		var seq stsmatch.Sequence
		ys := map[stsmatch.State]float64{stsmatch.EX: 10, stsmatch.EOE: 0, stsmatch.IN: 0}
		for i := 0; i < 7; i++ {
			st := states[i%3]
			seq = append(seq, stsmatch.Vertex{T: float64(i), Pos: []float64{ys[st]}, State: st})
		}
		return seq
	}
	exhaleFirst := mk(stsmatch.EX)
	inhaleFirst := mk(stsmatch.IN)

	if _, err := params.Distance(exhaleFirst, inhaleFirst, stsmatch.SameSession); err != nil {
		fmt.Println("exhale vs inhale: incomparable")
	}
	d, err := params.Distance(exhaleFirst, exhaleFirst, stsmatch.SameSession)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exhale vs itself:", d)
	// Output:
	// exhale vs inhale: incomparable
	// exhale vs itself: 0
}

// ExampleStreamDistance compares whole sessions (Definition 3): a
// stream is closer to a similar stream than to a very different one.
func ExampleStreamDistance() {
	db := stsmatch.NewDB()
	mk := func(id string, amp, period float64, seed int64) *stsmatch.Stream {
		cfg := synth.DefaultRespiration()
		cfg.Amplitude = amp
		cfg.Period = period
		cfg.IrregularProb = 0
		gen, err := synth.NewRespiration(cfg, seed)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := stsmatch.SegmentAll(stsmatch.DefaultSegmenterConfig(), gen.Generate(60))
		if err != nil {
			log.Fatal(err)
		}
		p, err := db.AddPatient(stsmatch.PatientInfo{ID: id})
		if err != nil {
			log.Fatal(err)
		}
		st := p.AddStream(id + "-S1")
		if err := st.Append(seq...); err != nil {
			log.Fatal(err)
		}
		return st
	}
	base := mk("base", 15, 3.8, 1)
	near := mk("near", 16, 3.8, 2)
	far := mk("far", 24, 3.0, 3) // deeper and faster breathing

	cfg := stsmatch.DefaultClusterConfig()
	cfg.QueryStride = 2
	dNear, err := stsmatch.StreamDistance(base, near, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dFar, err := stsmatch.StreamDistance(base, far, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("similar stream is closer:", dNear < dFar)
	// Output:
	// similar stream is closer: true
}

// ExampleSimulateGating quantifies the latency problem of Figure 1:
// gating on a delayed position irradiates tissue the ideal controller
// would not.
func ExampleSimulateGating() {
	cfg := synth.DefaultRespiration()
	cfg.IrregularProb = 0
	gen, err := synth.NewRespiration(cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	truth := gen.Generate(60)
	window := gatingsim.Window{Lo: -3, Hi: 3}

	ideal, err := gatingsim.SimulateGating(truth, window, gatingsim.OraclePositioner(truth, 0), 0)
	if err != nil {
		log.Fatal(err)
	}
	delayed, err := gatingsim.SimulateGating(truth, window, gatingsim.LastObservedPositioner(truth, 0.3, 0), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ideal accuracy is perfect:", ideal.Accuracy() == 1)
	fmt.Println("latency reduces accuracy:", delayed.Accuracy() < ideal.Accuracy())
	// Output:
	// ideal accuracy is perfect: true
	// latency reduces accuracy: true
}
