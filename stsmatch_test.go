package stsmatch_test

// Integration tests exercising the public API end to end, the way the
// examples and a downstream user would.

import (
	"math"
	"testing"

	"stsmatch"
	"stsmatch/gatingsim"
	"stsmatch/synth"
)

// buildSession segments one synthetic session into a fresh database.
func buildSession(t *testing.T, seed int64, dur float64) (*stsmatch.DB, *stsmatch.Stream) {
	t.Helper()
	cfg := synth.DefaultRespiration()
	cfg.IrregularProb = 0.005
	gen, err := synth.NewRespiration(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := stsmatch.SegmentAll(stsmatch.DefaultSegmenterConfig(), gen.Generate(dur))
	if err != nil {
		t.Fatal(err)
	}
	db := stsmatch.NewDB()
	p, err := db.AddPatient(stsmatch.PatientInfo{ID: "P01"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("P01-S01")
	if err := st.Append(seq...); err != nil {
		t.Fatal(err)
	}
	return db, st
}

func TestPublicPipelineEndToEnd(t *testing.T) {
	db, st := buildSession(t, 11, 120)
	params := stsmatch.DefaultParams()
	matcher, err := stsmatch.NewMatcher(db, params)
	if err != nil {
		t.Fatal(err)
	}
	seq := st.Seq()
	history := seq[:len(seq)-2]
	qseq, info := params.DynamicQuery(history)
	if len(qseq) < params.MinQueryVertices()-1 {
		t.Fatalf("query too short: %d", len(qseq))
	}
	_ = info
	query := stsmatch.NewQuery(qseq, "P01", "P01-S01")
	matches, err := matcher.FindSimilar(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches on a two-minute regular session")
	}
	pred, err := matcher.PredictPosition(query, matches, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := seq.PositionAt(query.Now + 0.2)
	if e := math.Abs(pred.Pos[0] - truth[0]); e > 2 {
		t.Errorf("prediction error %.2f mm too large", e)
	}
}

func TestPublicStreamingIngestion(t *testing.T) {
	// Push-by-push ingestion must equal batch segmentation.
	cfg := synth.DefaultRespiration()
	gen, err := synth.NewRespiration(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(45)

	batch, err := stsmatch.SegmentAll(stsmatch.DefaultSegmenterConfig(), samples)
	if err != nil {
		t.Fatal(err)
	}

	seg, err := stsmatch.NewSegmenter(stsmatch.DefaultSegmenterConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := stsmatch.NewDB()
	p, _ := db.AddPatient(stsmatch.PatientInfo{ID: "P01"})
	st := p.AddStream("S01")
	for _, s := range samples {
		vs, err := seg.Push(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Append(vs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(seg.Flush()...); err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(batch) {
		t.Errorf("streaming %d vertices vs batch %d", st.Len(), len(batch))
	}
}

func TestPublicClusterPatients(t *testing.T) {
	// Two slow-deep patients vs two fast-shallow patients must cluster
	// apart.
	db := stsmatch.NewDB()
	mk := func(id string, period, amp float64, seed int64) {
		cfg := synth.DefaultRespiration()
		cfg.Period = period
		cfg.Amplitude = amp
		cfg.IrregularProb = 0
		gen, err := synth.NewRespiration(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := stsmatch.SegmentAll(stsmatch.DefaultSegmenterConfig(), gen.Generate(60))
		if err != nil {
			t.Fatal(err)
		}
		p, err := db.AddPatient(stsmatch.PatientInfo{ID: id})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AddStream(id + "-S1").Append(seq...); err != nil {
			t.Fatal(err)
		}
	}
	mk("deep1", 5, 20, 1)
	mk("deep2", 5.2, 19, 2)
	mk("fast1", 2.6, 9, 3)
	mk("fast2", 2.5, 10, 4)

	ccfg := stsmatch.DefaultClusterConfig()
	ccfg.QueryStride = 2
	cl, err := stsmatch.ClusterPatients(db, ccfg, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Assign[0] != cl.Assign[1] || cl.Assign[2] != cl.Assign[3] || cl.Assign[0] == cl.Assign[2] {
		t.Errorf("clustering failed to separate families: %v", cl.Assign)
	}

	// Stream and patient distances reflect the same structure.
	patients := db.Patients()
	dSame, err := stsmatch.PatientDistance(patients[0], patients[1], ccfg)
	if err != nil {
		t.Fatal(err)
	}
	dCross, err := stsmatch.PatientDistance(patients[0], patients[2], ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if dSame >= dCross {
		t.Errorf("family structure lost: same=%.3f cross=%.3f", dSame, dCross)
	}
}

func TestConcurrentIngestionAndMatching(t *testing.T) {
	// The deployment pattern: one goroutine appends a live stream
	// while others run retrieval and prediction against the shared
	// database. Run with -race in CI.
	db, live := buildSession(t, 21, 90)
	// A second historical stream gives the matchers stable work.
	cfg := synth.DefaultRespiration()
	gen, err := synth.NewRespiration(cfg, 22)
	if err != nil {
		t.Fatal(err)
	}
	histSeq, err := stsmatch.SegmentAll(stsmatch.DefaultSegmenterConfig(), gen.Generate(90))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := db.AddPatient(stsmatch.PatientInfo{ID: "P02"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.AddStream("P02-S01").Append(histSeq...); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errCh := make(chan error, 3)
	go func() { // writer: extend the live stream
		last := live.Seq()[live.Len()-1]
		for i := 0; i < 300; i++ {
			v := stsmatch.Vertex{
				T:     last.T + float64(i+1),
				Pos:   []float64{float64(i % 10)},
				State: stsmatch.State(i % 3),
			}
			if err := live.Append(v); err != nil {
				errCh <- err
				return
			}
		}
		close(stop)
	}()
	for w := 0; w < 2; w++ { // readers: match and predict continuously
		go func() {
			matcher, err := stsmatch.NewMatcher(db, stsmatch.DefaultParams())
			if err != nil {
				errCh <- err
				return
			}
			for {
				select {
				case <-stop:
					errCh <- nil
					return
				default:
				}
				seq := live.Seq()
				if len(seq) < 12 {
					continue
				}
				qseq, _ := matcher.Params.DynamicQuery(seq)
				q := stsmatch.NewQuery(qseq, "P01", "P01-S01")
				if _, err := matcher.FindSimilar(q, nil); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicFixedQueryHelper(t *testing.T) {
	_, st := buildSession(t, 5, 90)
	seq := st.Seq()
	q := stsmatch.FixedQuery(seq, 4)
	if len(q) != 13 {
		t.Errorf("FixedQuery(4) = %d vertices, want 13", len(q))
	}
}

func TestPublicGatingSimulation(t *testing.T) {
	cfg := synth.DefaultRespiration()
	cfg.IrregularProb = 0
	gen, err := synth.NewRespiration(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	truth := gen.Generate(60)
	w := gatingsim.Window{Lo: -3, Hi: 3}
	ideal, err := gatingsim.SimulateGating(truth, w, gatingsim.OraclePositioner(truth, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := gatingsim.SimulateGating(truth, w, gatingsim.LastObservedPositioner(truth, 0.3, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(ideal.Accuracy() == 1 && delayed.Accuracy() < 1) {
		t.Errorf("latency effect missing: ideal %.3f delayed %.3f", ideal.Accuracy(), delayed.Accuracy())
	}
}

func TestPublicSynthGeneralizations(t *testing.T) {
	hb, err := synth.NewHeartbeat(synth.DefaultHeartbeat(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hb.Generate(10)) == 0 {
		t.Error("empty heartbeat")
	}
	arm, err := synth.NewRobotArm(synth.DefaultRobotArm(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(arm.Generate(10)) == 0 {
		t.Error("empty robot arm")
	}
	if len(synth.GenerateTide(synth.DefaultTide(), 24*3600, 1)) == 0 {
		t.Error("empty tide")
	}
	cohort, err := synth.GenerateCohort(synth.CohortConfig{
		NumPatients: 2, SessionsPer: 1, SessionDur: 10, Dims: 1, Seed: 1,
	})
	if err != nil || len(cohort) != 2 {
		t.Errorf("cohort: %v, %d", err, len(cohort))
	}
}
