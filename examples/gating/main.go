// Gated radiotherapy with latency compensation — the paper's Figure 1
// scenario end to end.
//
// A radiation system observes the tumor through an imaging chain with
// ~200 ms of total latency. Gating on the *last observed* position
// therefore irradiates healthy tissue whenever the tumor has moved on.
// This example compares three beam controllers on the same ground-truth
// motion:
//
//  1. ideal     — zero-latency oracle (upper bound),
//  2. delayed   — last observed position, latency uncompensated,
//  3. predicted — the library's online subsequence-matching predictor
//     forecasting the present position from the delayed stream.
//
// It reports gating duty cycle / accuracy and beam-tracking error for
// each controller.
//
//	go run ./examples/gating
package main

import (
	"fmt"
	"log"

	"stsmatch"
	"stsmatch/gatingsim"
	"stsmatch/synth"
)

const (
	latency    = 0.200 // seconds of imaging + system delay
	sessionDur = 150   // seconds of treatment
	historyDur = 60    // seconds of same-session history before beam-on
)

func main() {
	// Ground-truth tumor motion for one fraction.
	cfg := synth.DefaultRespiration()
	cfg.IrregularProb = 0.01
	gen, err := synth.NewRespiration(cfg, 2024)
	if err != nil {
		log.Fatal(err)
	}
	truth := gen.Generate(sessionDur)

	ideal := gatingsim.OraclePositioner(truth, 0)
	delayed := gatingsim.LastObservedPositioner(truth, latency, 0)

	// Gate around the end-of-exhale plateau (where the tumor dwells).
	window := gatingsim.Window{Lo: -3, Hi: 3}
	eval := truth[int(historyDur*cfg.SampleRate):] // score after warm-up

	fmt.Printf("gating window [%.0f, %.0f] mm, latency %.0f ms, %d scored samples\n\n",
		window.Lo, window.Hi, latency*1000, len(eval))
	fmt.Println("controller   duty    beam-on accuracy   tracking error (mean/max mm)")
	for _, c := range []struct {
		name string
		pos  func() gatingsim.Positioner
	}{
		{"ideal", func() gatingsim.Positioner { return ideal }},
		{"delayed", func() gatingsim.Positioner { return delayed }},
		{"predicted", func() gatingsim.Positioner { return newPredictor(truth) }},
	} {
		g, err := gatingsim.SimulateGating(eval, window, c.pos(), 0)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := gatingsim.SimulateTracking(eval, c.pos(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %5.1f%%        %5.1f%%             %6.2f / %.2f\n",
			c.name, 100*g.DutyCycle(), 100*g.Accuracy(), tr.MeanError, tr.MaxError)
	}
	fmt.Println("\nprediction recovers most of the accuracy the latency destroyed,")
	fmt.Println("without sacrificing duty cycle — the motivation of Section 1.")
}

// newPredictor builds a latency-compensating positioner with its own
// fresh online pipeline (segmenter, stream database, matcher). It
// replays the delayed observation stream into the segmenter as
// simulation time advances, then forecasts the *present* position by
// subsequence matching — exactly the online loop of Section 4.
func newPredictor(truth []synth.Sample) gatingsim.Positioner {
	db := stsmatch.NewDB()
	patient, err := db.AddPatient(stsmatch.PatientInfo{ID: "P01"})
	if err != nil {
		log.Fatal(err)
	}
	stream := patient.AddStream("P01-S01")
	seg, err := stsmatch.NewSegmenter(stsmatch.DefaultSegmenterConfig())
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := stsmatch.NewMatcher(db, stsmatch.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	fed := 0
	lastObs := 0.0
	return gatingsim.PositionerFunc(func(t float64) (float64, bool) {
		for fed < len(truth) && truth[fed].T <= t-latency {
			vs, err := seg.Push(truth[fed])
			if err != nil {
				log.Fatal(err)
			}
			if err := stream.Append(vs...); err != nil {
				log.Fatal(err)
			}
			lastObs = truth[fed].Pos[0]
			fed++
		}
		if t < historyDur || fed == 0 {
			return 0, false // still accumulating history; beam held
		}
		seq := stream.Seq()
		qseq, _ := matcher.Params.DynamicQuery(seq)
		if len(qseq) < 2 {
			return 0, false
		}
		q := stsmatch.NewQuery(qseq, "P01", "P01-S01")
		matches, err := matcher.FindSimilar(q, nil)
		if err != nil {
			log.Fatal(err)
		}
		// The newest observation is the position at t-latency. Matched
		// histories estimate how far the target moves across the
		// latency gap; adding that displacement to the observation
		// forecasts the present.
		tObs := truth[fed-1].T
		disp, err := matcher.PredictDisplacement(q, matches, tObs-q.Now, t-q.Now, 0)
		if err != nil {
			// No similar history right now (e.g. irregular breathing):
			// fall back to the last observed position, like the
			// uncompensated controller, rather than holding the beam.
			return lastObs, true
		}
		return lastObs + disp[0], true
	})
}
