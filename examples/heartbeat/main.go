// Heartbeat analysis — the first generalization of Section 6.
//
// "A very similar application is patient heartbeat analysis and
// characterization. The regularity of a heartbeat may be affected by
// fever, blood pressure, medication, or other physiological
// conditions."
//
// This example instantiates the four-step framework on a synthetic
// arterial pulse train:
//
//  1. Motion model — three linear states per beat (systolic upstroke,
//     initial decline, diastolic runoff) map onto the FSM's IN / EX /
//     EOE states.
//
//  2. Segmentation — the same online segmenter, reconfigured for
//     100 Hz pulse data.
//
//  3. Subsequence similarity — the same weighted distance; stability
//     flags arrhythmic stretches.
//
//  4. Result analysis — beat-rate forecasting and ectopic-beat
//     (premature beat) detection via subsequence stability.
//
//     go run ./examples/heartbeat
package main

import (
	"fmt"
	"log"

	"stsmatch"
	"stsmatch/synth"
)

func main() {
	// A pulse train with occasional premature (ectopic) beats.
	cfg := synth.DefaultHeartbeat()
	cfg.EctopicProb = 0.04
	gen, err := synth.NewHeartbeat(cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	samples := gen.Generate(120)
	fmt.Printf("generated %d pulse samples (%.0f s at %.0f Hz, ~%.0f bpm)\n",
		len(samples), samples[len(samples)-1].T, cfg.SampleRate, cfg.Rate)

	// Step 2: segmentation, reconfigured for the faster, larger
	// signal: a beat lasts ~0.85 s, so the trend window and minimum
	// segment duration shrink accordingly.
	segCfg := stsmatch.DefaultSegmenterConfig()
	segCfg.SlopeWindow = 7         // 70 ms at 100 Hz
	segCfg.SlopeThreshold = 70     // units/s; upstroke ~300, decline ~-115, runoff ~-30
	segCfg.MinSegmentDur = 0.06    // the upstroke lasts ~130 ms
	segCfg.SmoothAlpha = 0.5       // light smoothing; the pulse is clean
	segCfg.MaxCycleDeviation = 2.2 // ectopic beats deviate ~40%
	seq, err := stsmatch.SegmentAll(segCfg, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented into %d vertices; ~%.1f segments per beat\n",
		len(seq), float64(seq.NumSegments())/(cfg.Rate/60*120))

	// Step 3: the same similarity machinery. Beat "cycles" are three
	// segments, like breathing cycles, so the default cycle bounds
	// apply unchanged; only the thresholds move to the pulse's scale.
	params := stsmatch.DefaultParams()
	params.DistThreshold = 16 // pulse pressure is ~40 units vs 15 mm motion
	params.StabilityThreshold = 35

	db := stsmatch.NewDB()
	p, err := db.AddPatient(stsmatch.PatientInfo{ID: "HB01"})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.AddStream("HB01-rest").Append(seq...); err != nil {
		log.Fatal(err)
	}
	matcher, err := stsmatch.NewMatcher(db, params)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4a: forecast the next beat from the most recent stable
	// window.
	history := seq[:len(seq)-2]
	qseq, info := params.DynamicQuery(history)
	query := stsmatch.NewQuery(qseq, "HB01", "HB01-rest")
	matches, err := matcher.FindSimilar(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic query: %d vertices, stable=%v; %d similar windows\n",
		len(qseq), info.Stable, len(matches))
	if fc, err := matcher.PredictNextSegment(query, matches, 0); err == nil {
		fmt.Printf("next segment forecast: %v for %.0f ms, amplitude %.1f units\n",
			fc.State, fc.Duration*1000, fc.Amplitude)
	}

	// Step 4b: arrhythmia screening — slide a stability strip over
	// the whole recording. Two complementary signals flag rhythm
	// disturbances: the FSM marking beats IRR (an ectopic beat breaks
	// the state order and the cycle statistics), and the stability
	// value sigma exceeding the threshold.
	const strip = 10 // vertices, ~3 beats
	flaggedSigma, flaggedIRR, total := 0, 0, 0
	for i := 0; i+strip <= len(seq); i += 3 {
		total++
		w := seq[i : i+strip]
		if !params.Stable(w) {
			flaggedSigma++
		}
		for _, v := range w {
			if v.State == stsmatch.IRR {
				flaggedIRR++
				break
			}
		}
	}
	fmt.Printf("\narrhythmia screening over %d windows (~3 beats each):\n", total)
	fmt.Printf("  %d contain FSM-detected irregular beats (IRR)\n", flaggedIRR)
	fmt.Printf("  %d unstable under sigma > %.0f\n", flaggedSigma, params.StabilityThreshold)
	fmt.Println("(flagged windows would be referred for clinical review — the")
	fmt.Println(" computer-aided-diagnosis application of Section 5.3)")
}
