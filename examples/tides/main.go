// Tidal analysis — the fourth generalization of Section 6.
//
// "The tide's rhythmic rise and fall is in a predictive pattern,
// mostly following the moon's motion and position. ... By learning
// more about tidal motion, we can discover how the phases of the moon
// or the moon's distance from Earth affects the tidal range. We can
// also correlate tides with coastal catastrophes."
//
// A tide gauge samples water height every six minutes. The framework
// instantiates directly: rising water is IN, falling water is EX,
// slack water around high/low tide is EOE, and storm surges appear as
// IRR. The example predicts the water level hours ahead and flags
// surge periods.
//
//	go run ./examples/tides
package main

import (
	"fmt"
	"log"

	"stsmatch"
	"stsmatch/synth"
)

func main() {
	// Ten days of tide-gauge readings, with weather-driven surge.
	cfg := synth.DefaultTide()
	cfg.WeatherStd = 0.25
	samples := synth.GenerateTide(cfg, 10*24*3600, 11)
	fmt.Printf("generated %d tide readings over %.0f days\n",
		len(samples), samples[len(samples)-1].T/86400)

	// Step 1+2: the tide's own finite state model and segmenter
	// configuration. Semidiurnal tides rise/fall over ~6.2 h with
	// ~1.6 m range: peak rates ~0.4 m/h = 1.1e-4 m/s. Slack water is
	// the analogue of end-of-exhale and occurs at BOTH high and low
	// tide, like the robot arm's two dwells.
	segCfg := stsmatch.DefaultSegmenterConfig()
	segCfg.SlopeWindow = 10        // one hour of readings
	segCfg.SlopeThreshold = 5.5e-5 // m/s; half of peak rate
	segCfg.MinSegmentDur = 1800    // 30 min
	segCfg.SmoothAlpha = 0.3
	segCfg.MaxCycleDeviation = 2.4
	segCfg.Transitions = [][2]stsmatch.State{
		{stsmatch.IN, stsmatch.EOE}, // rise -> slack (high water)
		{stsmatch.EOE, stsmatch.EX}, // slack -> fall
		{stsmatch.EX, stsmatch.EOE}, // fall -> slack (low water)
		{stsmatch.EOE, stsmatch.IN}, // slack -> rise
	}
	seq, err := stsmatch.SegmentAll(segCfg, samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmented into %d vertices; state string (one char per segment):\n%s\n",
		len(seq), seq.StateString())

	// Step 3: similarity thresholds on the tide's scale (metres and
	// hours instead of millimetres and seconds).
	params := stsmatch.DefaultParams()
	params.DistThreshold = 1.2 // m-scale amplitude differences
	params.WeightFreq = 0.0001 // durations are ~10^4 s; keep the terms balanced
	params.StabilityThreshold = 2.5

	db := stsmatch.NewDB()
	gauge, err := db.AddPatient(stsmatch.PatientInfo{ID: "gauge-042"})
	if err != nil {
		log.Fatal(err)
	}
	if err := gauge.AddStream("2026-06").Append(seq...); err != nil {
		log.Fatal(err)
	}
	matcher, err := stsmatch.NewMatcher(db, params)
	if err != nil {
		log.Fatal(err)
	}

	// Step 4a: forecast the water level 1-3 hours out.
	history := seq[:len(seq)-3]
	qseq, info := params.DynamicQuery(history)
	q := stsmatch.NewQuery(qseq, "gauge-042", "2026-06")
	matches, err := matcher.FindSimilar(q, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: %d vertices (stable=%v), %d similar windows\n",
		len(qseq), info.Stable, len(matches))
	for _, hours := range []float64{1, 2, 3} {
		delta := hours * 3600
		pred, err := matcher.PredictPosition(q, matches, delta, 0)
		if err != nil {
			fmt.Printf("  +%.0f h: no prediction (%v)\n", hours, err)
			continue
		}
		truth, _ := seq.PositionAt(q.Now + delta)
		fmt.Printf("  +%.0f h: predicted %+.2f m, actual %+.2f m\n", hours, pred.Pos[0], truth[0])
	}

	// Step 4b: surge screening via IRR fraction per day.
	fmt.Println("\nsurge screening (IRR time per day):")
	for day := 0; day < 10; day++ {
		lo, hi := float64(day)*86400, float64(day+1)*86400
		var irr, total float64
		for i := 0; i < seq.NumSegments(); i++ {
			s, e := seq[i].T, seq[i+1].T
			if e < lo || s > hi {
				continue
			}
			ov := min(e, hi) - max(s, lo)
			total += ov
			if seq[i].State == stsmatch.IRR {
				irr += ov
			}
		}
		bar := ""
		for b := 0.0; b < irr/3600; b++ {
			bar += "#"
		}
		fmt.Printf("  day %2d: %4.1f h irregular %s\n", day+1, irr/3600, bar)
	}
}
