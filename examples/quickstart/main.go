// Quickstart: the full pipeline on one synthetic patient — generate a
// breathing signal, segment it online into the finite-state PLR, store
// it, build a stability-driven dynamic query, retrieve similar
// subsequences and predict future positions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stsmatch"
	"stsmatch/synth"
)

func main() {
	// 1. A breathing signal: two minutes at 30 Hz with realistic
	// noise (cardiac oscillation, spikes, drifting amplitude). The
	// irregular-episode rate is kept low so the demo ends in regular
	// breathing; see examples/gating for irregular cases.
	cfg := synth.DefaultRespiration()
	cfg.IrregularProb = 0.005
	gen, err := synth.NewRespiration(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	samples := gen.Generate(120)
	fmt.Printf("generated %d raw samples over %.0f s\n", len(samples), samples[len(samples)-1].T)

	// 2. Online segmentation: raw samples -> PLR vertices, streaming.
	// In a real deployment Push runs per-frame during treatment; here
	// we replay the recording.
	seg, err := stsmatch.NewSegmenter(stsmatch.DefaultSegmenterConfig())
	if err != nil {
		log.Fatal(err)
	}
	db := stsmatch.NewDB()
	patient, err := db.AddPatient(stsmatch.PatientInfo{ID: "P01"})
	if err != nil {
		log.Fatal(err)
	}
	stream := patient.AddStream("P01-S01")
	for _, s := range samples {
		vs, err := seg.Push(s)
		if err != nil {
			log.Fatal(err)
		}
		if err := stream.Append(vs...); err != nil {
			log.Fatal(err)
		}
	}
	if err := stream.Append(seg.Flush()...); err != nil {
		log.Fatal(err)
	}
	seq := stream.Seq()
	fmt.Printf("segmented into %d vertices (%.0fx compression); state string:\n%s\n",
		stream.Len(), float64(len(samples))/float64(stream.Len()), seq.StateString())

	// 3. Dynamic query generation (Definition 1 + Section 4.1): the
	// query covers the most recent stable window of motion.
	params := stsmatch.DefaultParams()
	history := seq[:len(seq)-2] // pretend the last vertices are "the future"
	qseq, info := params.DynamicQuery(history)
	fmt.Printf("dynamic query: %d vertices, stable=%v (sigma=%.2f, theta=%.1f)\n",
		len(qseq), info.Stable, info.StripStability, params.StabilityThreshold)

	// 4. Retrieval (Definition 2): same state order, weighted distance
	// within the threshold.
	matcher, err := stsmatch.NewMatcher(db, params)
	if err != nil {
		log.Fatal(err)
	}
	query := stsmatch.NewQuery(qseq, "P01", "P01-S01")
	matches, err := matcher.FindSimilar(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieved %d similar subsequences", len(matches))
	if len(matches) > 0 {
		fmt.Printf(" (best distance %.3f, %s)", matches[0].Distance, matches[0].Relation)
	}
	fmt.Println()

	// 5. Prediction (Section 4.3): where will the tumor be in 200 ms?
	for _, ms := range []int{100, 200, 300} {
		delta := float64(ms) / 1000
		pred, err := matcher.PredictPosition(query, matches, delta, 0)
		if err != nil {
			fmt.Printf("  +%3d ms: no prediction (%v)\n", ms, err)
			continue
		}
		truth, _ := seq.PositionAt(query.Now + delta)
		fmt.Printf("  +%3d ms: predicted %6.2f mm, actual %6.2f mm, error %.2f mm (%d matches)\n",
			ms, pred.Pos[0], truth[0], abs(pred.Pos[0]-truth[0]), pred.NumMatches)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
