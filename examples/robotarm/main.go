// Robot-arm monitoring — the mechanical generalization of Section 6.
//
// "In an assembly line, the motion of a robot arm may be limited to a
// finite set of predefined states. We can pursue dynamic robot control
// and automatic robot manipulation through motion prediction and
// corresponding response actions."
//
// A pick-and-place axis cycles advance -> dwell -> return -> dwell.
// The advance maps to IN (rising position), the return to EX, dwells
// to EOE. The example:
//
//   - segments the axis trace with the shared online segmenter,
//
//   - predicts the axis position ahead of time (for motion
//     coordination with a downstream conveyor),
//
//   - detects fault cycles (mid-travel stalls) as IRR states, and
//
//   - compares two machines by whole-stream distance (a healthy twin
//     versus a worn one), the Definition 3 application.
//
//     go run ./examples/robotarm
package main

import (
	"fmt"
	"log"

	"stsmatch"
	"stsmatch/synth"
)

func main() {
	// A healthy axis and a worn twin (more timing jitter, occasional
	// stalls).
	healthyCfg := synth.DefaultRobotArm()
	healthyCfg.FaultProb = 0
	wornCfg := healthyCfg
	wornCfg.Jitter = 0.12
	wornCfg.FaultProb = 0.06

	healthy := mustGenerate(healthyCfg, 1, 300)
	healthy2 := mustGenerate(healthyCfg, 2, 300)
	worn := mustGenerate(wornCfg, 3, 300)

	// Segmenter settings for the axis: 50 Hz, 120 mm travel in 0.8 s
	// (~150 mm/s move slope), dwells of ~0.5 s.
	segCfg := stsmatch.DefaultSegmenterConfig()
	segCfg.SlopeWindow = 9     // 180 ms at 50 Hz
	segCfg.SlopeThreshold = 40 // mm/s
	segCfg.MinSegmentDur = 0.12
	segCfg.SmoothAlpha = 0.4
	segCfg.MaxCycleDeviation = 2.0
	// Step 1 of the Section 6 framework: the axis's own finite state
	// model. Unlike breathing, the cycle dwells at *both* ends:
	// advance (IN) -> dwell (EOE) -> return (EX) -> dwell (EOE) -> ...
	segCfg.Transitions = [][2]stsmatch.State{
		{stsmatch.IN, stsmatch.EOE},
		{stsmatch.EOE, stsmatch.EX},
		{stsmatch.EX, stsmatch.EOE},
		{stsmatch.EOE, stsmatch.IN},
	}

	db := stsmatch.NewDB()
	machine, err := db.AddPatient(stsmatch.PatientInfo{ID: "axis-A"})
	if err != nil {
		log.Fatal(err)
	}
	seqH := mustSegment(segCfg, healthy)
	seqH2 := mustSegment(segCfg, healthy2)
	seqW := mustSegment(segCfg, worn)
	streamH := machine.AddStream("axis-A-shift1")
	if err := streamH.Append(seqH...); err != nil {
		log.Fatal(err)
	}
	machineB, err := db.AddPatient(stsmatch.PatientInfo{ID: "axis-B"})
	if err != nil {
		log.Fatal(err)
	}
	streamH2 := machineB.AddStream("axis-B-shift1")
	if err := streamH2.Append(seqH2...); err != nil {
		log.Fatal(err)
	}
	machineC, err := db.AddPatient(stsmatch.PatientInfo{ID: "axis-C-worn"})
	if err != nil {
		log.Fatal(err)
	}
	streamW := machineC.AddStream("axis-C-shift1")
	if err := streamW.Append(seqW...); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("segmented: healthy %d vertices, twin %d, worn %d\n",
		len(seqH), len(seqH2), len(seqW))

	// Fault detection: stalls surface as IRR segments.
	fmt.Printf("IRR segments: healthy=%d, worn=%d (stalls break the FSA order)\n",
		countIRR(seqH), countIRR(seqW))

	// Position prediction for conveyor coordination: where will the
	// axis be in 150 ms?
	params := stsmatch.DefaultParams()
	params.DistThreshold = 20 // 120 mm travel vs 15 mm breathing
	matcher, err := stsmatch.NewMatcher(db, params)
	if err != nil {
		log.Fatal(err)
	}
	history := seqH[:len(seqH)-2]
	qseq, _ := params.DynamicQuery(history)
	query := stsmatch.NewQuery(qseq, "axis-A", "axis-A-shift1")
	matches, err := matcher.FindSimilar(query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nonline query: %d vertices, %d similar windows\n", len(qseq), len(matches))
	for _, ms := range []int{50, 150, 300} {
		delta := float64(ms) / 1000
		pred, err := matcher.PredictPosition(query, matches, delta, 0)
		if err != nil {
			fmt.Printf("  +%3d ms: no prediction (%v)\n", ms, err)
			continue
		}
		truth, _ := seqH.PositionAt(query.Now + delta)
		fmt.Printf("  +%3d ms: predicted %6.1f mm, actual %6.1f mm\n", ms, pred.Pos[0], truth[0])
	}

	// Machine health comparison by whole-stream distance: the healthy
	// twin should sit much closer than the worn axis.
	clCfg := stsmatch.DefaultClusterConfig()
	clCfg.Params = params
	dTwin, err := stsmatch.StreamDistance(streamH, streamH2, clCfg)
	if err != nil {
		log.Fatal(err)
	}
	dWorn, err := stsmatch.StreamDistance(streamH, streamW, clCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream distance (Definition 3):\n")
	fmt.Printf("  healthy vs healthy twin: %6.2f\n", dTwin)
	fmt.Printf("  healthy vs worn axis:    %6.2f\n", dWorn)
	if dWorn > dTwin {
		fmt.Println("the worn axis is clearly separated -> schedule maintenance")
	}
}

func mustGenerate(cfg synth.RobotArmConfig, seed int64, dur float64) []synth.Sample {
	gen, err := synth.NewRobotArm(cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	return gen.Generate(dur)
}

func mustSegment(cfg stsmatch.SegmenterConfig, samples []synth.Sample) stsmatch.Sequence {
	seq, err := stsmatch.SegmentAll(cfg, samples)
	if err != nil {
		log.Fatal(err)
	}
	return seq
}

func countIRR(seq stsmatch.Sequence) int {
	n := 0
	for _, v := range seq {
		if v.State == stsmatch.IRR {
			n++
		}
	}
	return n
}
